//go:build amd64 && linux

package tier2

import (
	"unsafe"

	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// The native backend emits one superblock trace as flat amd64 machine
// code: every micro-op becomes the handful of host instructions its
// closure body compiles to in spirit, minus the call/return and
// capture-environment traffic that makes the closure backend slower
// than tier-1 dispatch. Guest 32-bit values ride in host 32-bit
// registers (writes zero-extend, so address arithmetic is mod 2^32 for
// free), the lazy-flag record lives in the Machine exactly as for the
// closure backend, and every exit returns the same 1-based status into
// the same Exit table — the glue cannot tell the backends apart.
//
// Within the jitcall convention (DI = *Machine, SI = guest memory base,
// status out in AX) the emitter uses AX/CX/DX/R8/R9 as scratch with a
// fixed discipline: effective addresses are built in CX, the bounds
// checks clobber AX only, and multi-step micro-ops keep values that
// must survive a bounds check in R8/R9.
//
// The emitted prologue runs Run's own accounting loop: per iteration it
// bumps Iters, charges Cost against Fuel (and Credit when armed), and
// the loop-back exit re-enters the top only while fuel and credit last
// — so a hot guest loop spins entirely inside one jitcall, and
// cancellation still lands on the interpreter's polling quantum.
//
// Micro-ops whose semantics need lazy-flag materialization (plain
// guards and Jcc-less setcc forms, INC/DEC's carry preservation,
// ADC/SBB) exit or bail: materializing a deferred flag record is a
// branchy per-FlagOp computation that belongs in Go. A plain Jcc
// terminator exits with ExitJccLazy and lets the glue evaluate the
// condition; everything else unsupported fails compilation and leaves
// the superblock on tier-1.

const nativeAvailable = true

// minus4 is the stack-push displacement as a wrapped uint32 (32-bit lea
// arithmetic is mod 2^32, exactly the guest's ESP-4).
const minus4 = ^uint32(3)

//go:noescape
func jitcall(code uintptr, m *Machine) int32

// Machine field offsets, resolved once against a zero value. The
// emitter addresses every field as [rdi+off].
var zm Machine

var (
	offRegs      = int32(unsafe.Offsetof(zm.Regs))
	offFl        = int32(unsafe.Offsetof(zm.Fl))
	offCF        = int32(unsafe.Offsetof(zm.CF))
	offZF        = int32(unsafe.Offsetof(zm.ZF))
	offSF        = int32(unsafe.Offsetof(zm.SF))
	offOF        = int32(unsafe.Offsetof(zm.OF))
	offPF        = int32(unsafe.Offsetof(zm.PF))
	offMem       = int32(unsafe.Offsetof(zm.Mem))
	offBrk       = int32(unsafe.Offsetof(zm.Brk))
	offFuel      = int32(unsafe.Offsetof(zm.Fuel))
	offCredit    = int32(unsafe.Offsetof(zm.Credit))
	offPollArmed = int32(unsafe.Offsetof(zm.PollArmed))
	offIters     = int32(unsafe.Offsetof(zm.Iters))
	offTrapAddr  = int32(unsafe.Offsetof(zm.TrapAddr))
	offTrapAux   = int32(unsafe.Offsetof(zm.TrapAux))
	offExitTgt   = int32(unsafe.Offsetof(zm.ExitTarget))

	// Flags record sub-fields. A dword store at offFlOp covers Op,
	// KeptCF and the two pad bytes — the whole-struct-assignment
	// equivalent of the closure bodies' m.Fl = uop.Flags{...}.
	offFlOp  = offFl + int32(unsafe.Offsetof(zm.Fl.Op))
	offFlA   = offFl + int32(unsafe.Offsetof(zm.Fl.A))
	offFlB   = offFl + int32(unsafe.Offsetof(zm.Fl.B))
	offFlCin = offFl + int32(unsafe.Offsetof(zm.Fl.Cin))
	offFlRes = offFl + int32(unsafe.Offsetof(zm.Fl.Res))
)

func init() {
	// The dword-covers-Op-and-KeptCF trick and the field stores assume
	// the Flags layout; fail loudly if it ever changes.
	if unsafe.Offsetof(zm.Fl.Op) != 0 || unsafe.Offsetof(zm.Fl.KeptCF) != 1 ||
		unsafe.Offsetof(zm.Fl.A) != 4 || unsafe.Offsetof(zm.Fl.B) != 8 ||
		unsafe.Offsetof(zm.Fl.Cin) != 12 || unsafe.Offsetof(zm.Fl.Res) != 16 {
		panic("tier2: uop.Flags layout changed; update the native emitter")
	}
}

// ---- assembler extensions the emitter needs beyond nasm's core ----------

// imulRM: imul dst32, [rdi+off].
func (a *nasm) imulRM(dst int, off int32) {
	a.rex(false, dst, 0, 0)
	a.db(0x0F, 0xAF)
	a.modrmDI(dst, off)
}

// aluRR64: the REX.W "r/m, reg" ALU forms: op dst64, src64.
func (a *nasm) aluRR64(opMR byte, dst, src int) {
	a.rex(true, src, 0, dst)
	a.db(opMR, byte(0xC0|(src&7)<<3|dst&7))
}

// aluRI64: op reg64, imm32 (sign-extended; 0x81 group).
func (a *nasm) aluRI64(ext, reg int, imm uint32) {
	a.rex(true, 0, 0, reg)
	a.db(0x81, byte(0xC0|ext<<3|reg&7))
	a.d32(imm)
}

// shiftRI64: sh reg64, imm.
func (a *nasm) shiftRI64(ext, reg int, imm byte) {
	a.rex(true, 0, 0, reg)
	a.db(0xC1, byte(0xC0|ext<<3|reg&7), imm)
}

// movsxd: movsxd dst64, src32.
func (a *nasm) movsxd(dst, src int) {
	a.rex(true, dst, 0, src)
	a.db(0x63, byte(0xC0|(dst&7)<<3|src&7))
}

// cqo sign-extends rax into rdx.
func (a *nasm) cqo() { a.db(0x48, 0x99) }

// movRI64: movabs reg64, imm64.
func (a *nasm) movRI64(reg int, imm uint64) {
	a.rex(true, 0, 0, reg)
	a.db(byte(0xB8 | reg&7))
	a.d32(uint32(imm))
	a.d32(uint32(imm >> 32))
}

// ---- the emitter --------------------------------------------------------

// pstub is an out-of-line exit path: the fixup sites that jump to it
// and the code to emit once the hot fall-through body is done.
type pstub struct {
	fixes []int32
	emit  func()
}

type nemit struct {
	a     nasm
	t     *Trace
	us    []uop.Uop
	entry uint32

	mlen, ro, sbase uint32
	cost            uint32

	top  int32 // loop-back target: the per-iteration accounting
	pend []pstub

	// flOp is the FlagOp the lazy record is statically known to hold
	// at the current emission point: flEntry before the first writer,
	// flUnknown after a conditional one (see native_flags_amd64.go).
	// usedEntry records that some consumer read the entry state and
	// the trace therefore needs the glue's entry materialization.
	flOp      int
	usedEntry bool
}

// nativeCompile emits us as machine code into t. Returns false on any
// unsupported micro-op or when executable memory is unavailable; t is
// then discarded and the superblock stays on tier-1.
func nativeCompile(us []uop.Uop, entry uint32, m *Machine, t *Trace) bool {
	if m.MemLen < m.StackBase+8 || m.StackBase < pageSize {
		// The single-compare stack-range check needs mlen-size >= sbase;
		// any real guest address space satisfies this.
		return false
	}
	if t.Cost <= 0 || t.Cost > 1<<30 {
		return false // fuel charge must fit an imm32
	}
	e := &nemit{t: t, us: us, entry: entry,
		mlen: m.MemLen, ro: m.ROLimit, sbase: m.StackBase, cost: uint32(t.Cost),
		flOp: flEntry}
	a := &e.a

	// Prologue: pin the guest memory base, then the per-iteration
	// accounting Run applies around the closure backend.
	a.loadM64(hSI, offMem)
	e.top = a.here()
	a.incM64(offIters)
	a.subMI64(offFuel, e.cost)
	a.cmpMI8(offPollArmed, 0)
	f := a.jcc32(byte(x86.CCE))
	a.subMI64(offCredit, e.cost)
	a.patch(f)

	for i := range us {
		if !e.one(i) {
			return false
		}
	}
	for _, p := range e.pend {
		for _, f := range p.fixes {
			a.patch(f)
		}
		p.emit()
	}

	eb := sealExec(a.c)
	if eb == nil {
		return false
	}
	t.native, t.code = true, eb
	t.NeedFlags = e.usedEntry
	code := uintptr(unsafe.Pointer(&eb.buf[0]))
	t.head = func() int32 { return jitcall(code, m) }
	for i := range t.Exits {
		if t.Exits[i].Loop {
			t.Loop = true
		}
	}
	return true
}

// ---- exit-table helpers (mirror comp's) ---------------------------------

func (e *nemit) exit(x Exit) int32 {
	e.t.Exits = append(e.t.Exits, x)
	return int32(len(e.t.Exits))
}

func (e *nemit) rf(i int, eip, size uint32, started int) int32 {
	return e.exit(Exit{Kind: ExitReadFault, Uop: i, EIP: eip, Size: size, Started: started})
}

func (e *nemit) wf(i int, eip, size uint32, started int) int32 {
	return e.exit(Exit{Kind: ExitWriteFault, Uop: i, EIP: eip, Size: size, Started: started})
}

func (e *nemit) end(i int, target uint32) int32 {
	return e.exit(Exit{Kind: ExitEnd, Uop: i, Target: target, Loop: target == e.entry})
}

// ---- emission helpers ---------------------------------------------------

func regOff(r uint8) int32 { return offRegs + 4*int32(r) }

// paOff mirrors comp's pa clamp: Aux is a register only when it indexes
// the file; guards reuse the field as a chain-slot index.
func paOff(u *uop.Uop) int32 {
	if int(u.Aux) < len(zm.Regs) {
		return regOff(u.Aux)
	}
	return regOff(uop.RegZero)
}

// addr materializes the micro-op's effective address in ECX
// (disp + base + idx*scale, mod 2^32). Clobbers DX; flags trashed.
func (e *nemit) addr(u *uop.Uop) {
	a := &e.a
	b, ix, sc, disp := u.Base, u.Idx, uint32(u.Scale), u.Disp
	if sc == 0 {
		ix = uop.RegZero // absent index is encoded with Scale 0
	}
	switch {
	case b == uop.RegZero && ix == uop.RegZero:
		a.movRI(hCX, disp)
	case ix == uop.RegZero:
		a.loadM(hCX, regOff(b))
		if disp != 0 {
			a.leaD(hCX, hCX, disp)
		}
	case b == uop.RegZero && (sc == 1 || sc == 2 || sc == 4 || sc == 8):
		a.loadM(hCX, regOff(ix))
		if sc > 1 {
			var n byte
			for s := sc; s > 1; s >>= 1 {
				n++
			}
			a.shiftRI(shlExt, hCX, n)
		}
		if disp != 0 {
			a.leaD(hCX, hCX, disp)
		}
	default:
		a.loadM(hCX, regOff(b))
		a.loadM(hDX, regOff(ix))
		a.lea32(hCX, hCX, hDX, uint8(sc), disp)
	}
}

// checkRd emits the interpreter's exact rdOK test on the address in
// ECX, returning status s on failure (TrapAddr <- ECX). Clobbers EAX
// and flags only. stackFirst orders the stack-range test first (stack
// pointer accesses), otherwise the heap range leads.
func (e *nemit) checkRd(size uint32, s int32, stackFirst bool) {
	e.check(pageSize, size, s, stackFirst)
}

// checkWr is wrOK: the heap range starts at roLimit instead of the
// guard page.
func (e *nemit) checkWr(size uint32, s int32, stackFirst bool) {
	e.check(e.ro, size, s, stackFirst)
}

func (e *nemit) check(low, size uint32, s int32, stackFirst bool) {
	a := &e.a
	kStack := e.mlen - size - e.sbase
	if stackFirst {
		a.leaD(hAX, hCX, -e.sbase)
		a.aluRI(aluCmpExt, hAX, kStack)
		f1 := a.jcc32(byte(x86.CCBE)) // in stack range
		a.aluRI(aluCmpExt, hCX, low)
		f2 := a.jcc32(byte(x86.CCB)) // below heap base: fault
		a.loadM(hAX, offBrk)
		a.aluRI(aluSubExt, hAX, size)
		a.aluRR(aluCmpMR, hCX, hAX)
		f3 := a.jcc32(byte(x86.CCBE)) // in heap range
		a.patch(f2)
		a.storeM(offTrapAddr, hCX)
		a.retStatus(s)
		a.patch(f1)
		a.patch(f3)
		return
	}
	a.aluRI(aluCmpExt, hCX, low)
	f1 := a.jcc32(byte(x86.CCB)) // below heap base: try the stack
	a.loadM(hAX, offBrk)
	a.aluRI(aluSubExt, hAX, size)
	a.aluRR(aluCmpMR, hCX, hAX)
	f2 := a.jcc32(byte(x86.CCBE)) // in heap range
	a.patch(f1)
	a.leaD(hAX, hCX, -e.sbase)
	a.aluRI(aluCmpExt, hAX, kStack)
	f3 := a.jcc32(byte(x86.CCBE)) // in stack range
	a.storeM(offTrapAddr, hCX)
	a.retStatus(s)
	a.patch(f2)
	a.patch(f3)
}

// stub registers an out-of-line exit path reached from fixes.
func (e *nemit) stub(emit func(), fixes ...int32) {
	e.pend = append(e.pend, pstub{fixes: fixes, emit: emit})
}

// retStub is the common exit-with-status stub.
func (e *nemit) retStub(s int32, fixes ...int32) {
	e.stub(func() { e.a.retStatus(s) }, fixes...)
}

// insByte writes the byte value in EAX (0..255) into Dst.byte[dsh]:
// *pd = *pd &^ (0xFF<<dsh) | val<<dsh. Clobbers DX and flags.
func (e *nemit) insByte(dsh uint8, pd int32) {
	a := &e.a
	if dsh != 0 {
		a.shiftRI(shlExt, hAX, dsh)
	}
	a.loadM(hDX, pd)
	a.aluRI(aluAndExt, hDX, ^(uint32(0xFF) << dsh))
	a.aluRR(aluOrMR, hDX, hAX)
	a.storeM(pd, hDX)
}

// ---- flag-record helpers (whole-struct semantics: unset fields zero) ----
//
// Each helper also advances the static flag-state tracker; helpers
// invoked from exit stubs run after the whole mainline is emitted, so
// the stray update cannot mislead a later consumer.

func (e *nemit) recABRes(op uop.FlagOp, aReg, bReg, resReg int) {
	a := &e.a
	a.storeMI(offFlOp, uint32(op))
	a.storeM(offFlA, aReg)
	a.storeM(offFlB, bReg)
	a.storeMI(offFlCin, 0)
	a.storeM(offFlRes, resReg)
	e.flOp = int(op)
}

func (e *nemit) recABIRes(op uop.FlagOp, aReg int, bImm uint32, resReg int) {
	a := &e.a
	a.storeMI(offFlOp, uint32(op))
	a.storeM(offFlA, aReg)
	a.storeMI(offFlB, bImm)
	a.storeMI(offFlCin, 0)
	a.storeM(offFlRes, resReg)
	e.flOp = int(op)
}

func (e *nemit) recLogic(op uop.FlagOp, resReg int) {
	a := &e.a
	a.storeMI(offFlOp, uint32(op))
	a.storeMI(offFlA, 0)
	a.storeMI(offFlB, 0)
	a.storeMI(offFlCin, 0)
	a.storeM(offFlRes, resReg)
	e.flOp = int(op)
}

// recSZP is the uimul/umul1 partial record: Fl.Op, Fl.Res = FlagSZP,
// res — a byte store (KeptCF preserved) plus the result.
func (e *nemit) recSZP(resReg int) {
	e.a.storeMI8(offFlOp, byte(uop.FlagSZP))
	e.a.storeM(offFlRes, resReg)
	e.flOp = int(uop.FlagSZP)
}

// ---- generic ALU bodies -------------------------------------------------

// alu32 emits res(R8) = EAX op b (b in bReg, or bImm when bReg < 0),
// recording flags when rec, mirroring Machine.ualu. Returns (wb, ok);
// ok is false for ADC/SBB, which need lazy-CF materialization.
func (e *nemit) alu32(op uop.AluOp, bReg int, bImm uint32, rec bool) (bool, bool) {
	a := &e.a
	do := func(mr byte, ext int) {
		a.movRR(hR8, hAX)
		if bReg < 0 {
			a.aluRI(ext, hR8, bImm)
		} else {
			a.aluRR(mr, hR8, bReg)
		}
	}
	recAB := func(fo uop.FlagOp) {
		if !rec {
			return
		}
		if bReg < 0 {
			e.recABIRes(fo, hAX, bImm, hR8)
		} else {
			e.recABRes(fo, hAX, bReg, hR8)
		}
	}
	switch op {
	case uop.AluAdd:
		do(aluAddMR, aluAddExt)
		recAB(uop.FlagAdd)
		return true, true
	case uop.AluSub:
		do(aluSubMR, aluSubExt)
		recAB(uop.FlagSub)
		return true, true
	case uop.AluCmp:
		do(aluSubMR, aluSubExt)
		recAB(uop.FlagSub)
		return false, true
	case uop.AluAnd:
		do(aluAndMR, aluAndExt)
		if rec {
			e.recLogic(uop.FlagLogic, hR8)
		}
		return true, true
	case uop.AluOr:
		do(aluOrMR, aluOrExt)
		if rec {
			e.recLogic(uop.FlagLogic, hR8)
		}
		return true, true
	case uop.AluXor:
		do(aluXorMR, aluXorExt)
		if rec {
			e.recLogic(uop.FlagLogic, hR8)
		}
		return true, true
	case uop.AluTest:
		do(aluAndMR, aluAndExt)
		if rec {
			e.recLogic(uop.FlagLogic, hR8)
		}
		return false, true
	case uop.AluAdc, uop.AluSbb:
		return e.aluCarry(op, bReg, bImm, rec, false)
	}
	return false, false
}

// aluCarry emits ADC/SBB for alu32/alu8: materialize the carry-in from
// the current record, combine with plain adds/subs, and write the full
// FlagAdc/FlagSbb record including Cin — mirroring Machine.ualu. The
// memory forms keep their writeback address live in CX across the ALU
// body, so CX is spilled around the materializer (which clobbers it).
func (e *nemit) aluCarry(op uop.AluOp, bReg int, bImm uint32, rec, byteWidth bool) (bool, bool) {
	if !rec || e.flOp == flUnknown {
		return false, false // stays on tier-1
	}
	a := &e.a
	a.pushR(hCX)
	a.movRR(hR8, hAX) // a
	if bReg >= 0 {
		a.movRR(hR9, bReg) // b
	}
	e.cfValue(hAX) // cin
	a.popR(hCX)

	sel, ext, fo := byte(aluAddMR), aluAddExt, uop.FlagAdc
	if op == uop.AluSbb {
		sel, ext, fo = byte(aluSubMR), aluSubExt, uop.FlagSbb
	}
	if byteWidth {
		fo = uop.FlagAdc8
		if op == uop.AluSbb {
			fo = uop.FlagSbb8
		}
	}
	a.movRR(hDX, hR8)
	if bReg >= 0 {
		a.aluRR(sel, hDX, hR9)
	} else {
		a.aluRI(ext, hDX, bImm)
	}
	a.aluRR(sel, hDX, hAX) // ± cin
	if byteWidth {
		a.aluRI(aluAndExt, hDX, 0xFF)
	}
	a.storeMI(offFlOp, uint32(fo))
	a.storeM(offFlA, hR8)
	if bReg >= 0 {
		a.storeM(offFlB, hR9)
	} else {
		a.storeMI(offFlB, bImm)
	}
	a.storeM(offFlCin, hAX)
	a.storeM(offFlRes, hDX)
	a.movRR(hR8, hDX)
	e.flOp = int(fo)
	return true, true
}

// alu8 is the byte-width form: a pre-masked in EAX, b pre-masked in
// bReg (or raw bImm), result masked in R8, *8 flag records.
func (e *nemit) alu8(op uop.AluOp, bReg int, bImm uint32, rec bool) (bool, bool) {
	a := &e.a
	do := func(mr byte, ext int, mask bool) {
		a.movRR(hR8, hAX)
		if bReg < 0 {
			a.aluRI(ext, hR8, bImm)
		} else {
			a.aluRR(mr, hR8, bReg)
		}
		if mask {
			a.aluRI(aluAndExt, hR8, 0xFF)
		}
	}
	recAB := func(fo uop.FlagOp) {
		if !rec {
			return
		}
		if bReg < 0 {
			e.recABIRes(fo, hAX, bImm, hR8)
		} else {
			e.recABRes(fo, hAX, bReg, hR8)
		}
	}
	switch op {
	case uop.AluAdd:
		do(aluAddMR, aluAddExt, true)
		recAB(uop.FlagAdd8)
		return true, true
	case uop.AluSub:
		do(aluSubMR, aluSubExt, true)
		recAB(uop.FlagSub8)
		return true, true
	case uop.AluCmp:
		do(aluSubMR, aluSubExt, true)
		recAB(uop.FlagSub8)
		return false, true
	case uop.AluAnd:
		do(aluAndMR, aluAndExt, false)
		if rec {
			e.recLogic(uop.FlagLogic8, hR8)
		}
		return true, true
	case uop.AluOr:
		do(aluOrMR, aluOrExt, false)
		if rec {
			e.recLogic(uop.FlagLogic8, hR8)
		}
		return true, true
	case uop.AluXor:
		do(aluXorMR, aluXorExt, false)
		if rec {
			e.recLogic(uop.FlagLogic8, hR8)
		}
		return true, true
	case uop.AluTest:
		do(aluAndMR, aluAndExt, false)
		if rec {
			e.recLogic(uop.FlagLogic8, hR8)
		}
		return false, true
	case uop.AluAdc, uop.AluSbb:
		return e.aluCarry(op, bReg, bImm, rec, true)
	}
	return false, false
}

// loadByteOf loads Reg.byte[sh] masked into reg.
func (e *nemit) loadByteOf(reg int, rOff int32, sh uint8) {
	a := &e.a
	a.loadM(reg, rOff)
	if sh != 0 {
		a.shiftRI(shrExt, reg, sh)
	}
	a.aluRI(aluAndExt, reg, 0xFF)
}

// emitEnd finishes a trace with the unconditional end transfer s: the
// loop back edge re-enters the accounting top while fuel and the poll
// credit allow, exactly as Run's internal loop. Returns false when a
// trace that consumed its entry flag state loops with the state
// unknown — the FlagNone entry invariant cannot be restored then.
func (e *nemit) emitEnd(s int32) bool {
	if !e.t.Exits[s-1].Loop {
		e.a.retStatus(s)
		return true
	}
	if e.usedEntry {
		switch e.flOp {
		case flUnknown:
			return false
		case flEntry, int(uop.FlagNone):
			// Entry state untouched (or rewritten as FlagNone): the
			// next iteration sees it as-is.
		default:
			e.matAll()
		}
	}
	a := &e.a
	a.cmpMI64(offFuel, e.cost)
	f := a.jcc32(byte(x86.CCL)) // fuel < cost: exit
	a.cmpMI8(offPollArmed, 0)
	a.jccTo(byte(x86.CCE), e.top) // not armed: loop
	a.cmpMI64(offCredit, 0)
	a.jccTo(byte(x86.CCG), e.top) // credit > 0: loop
	a.patch(f)
	a.retStatus(s)
	return true
}

// one emits micro-op i. Returns false on a micro-op the native backend
// cannot express without materializing lazy flags.
func (e *nemit) one(i int) bool {
	u := &e.us[i]
	a := &e.a
	pd, ps := regOff(u.Dst), regOff(u.Src)
	pa := paOff(u)
	rESP, rECX := regOff(uint8(x86.ESP)), regOff(uint8(x86.ECX))
	rEAX, rEDX := regOff(uint8(x86.EAX)), regOff(uint8(x86.EDX))
	imm, dsh, ssh := u.Imm, u.Dsh, u.Ssh
	cc := byte(u.Sub)
	aluOp := uop.AluOp(u.Sub)

	switch u.Kind {
	case uop.KindNop:

	// --- moves ---
	case uop.KindMovRR:
		a.loadM(hAX, ps)
		a.storeM(pd, hAX)
	case uop.KindMovRI:
		a.storeMI(pd, imm)
	case uop.KindMovRR8:
		e.loadByteOf(hAX, ps, ssh)
		e.insByte(dsh, pd)
	case uop.KindMovRI8:
		a.loadM(hDX, pd)
		a.aluRI(aluAndExt, hDX, ^(uint32(0xFF) << dsh))
		if v := (imm & 0xFF) << dsh; v != 0 {
			a.aluRI(aluOrExt, hDX, v)
		}
		a.storeM(pd, hDX)
	case uop.KindLoad:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hAX, hCX, 4, false)
		a.storeM(pd, hAX)
	case uop.KindLoad8:
		e.addr(u)
		e.checkRd(1, e.rf(i, u.EIP, 1, 1), false)
		a.loadG(hAX, hCX, 1, false)
		e.insByte(dsh, pd)
	case uop.KindStore:
		e.addr(u)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), false)
		a.loadM(hAX, ps)
		a.storeG(hCX, hAX, 4)
	case uop.KindStore8:
		e.addr(u)
		e.checkWr(1, e.wf(i, u.EIP, 1, 1), false)
		a.loadM(hAX, ps)
		if ssh != 0 {
			a.shiftRI(shrExt, hAX, ssh)
		}
		a.storeG(hCX, hAX, 1)
	case uop.KindStoreI:
		e.addr(u)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), false)
		a.storeGI(hCX, imm, 4)
	case uop.KindStoreI8:
		e.addr(u)
		e.checkWr(1, e.wf(i, u.EIP, 1, 1), false)
		a.storeGI(hCX, imm, 1)
	case uop.KindLea:
		e.addr(u)
		a.storeM(pd, hCX)

	// --- widening moves ---
	case uop.KindMovzxRR8:
		e.loadByteOf(hAX, ps, ssh)
		a.storeM(pd, hAX)
	case uop.KindMovzxRR16:
		a.loadM(hAX, ps)
		a.widenRR(0xB7, hAX, hAX)
		a.storeM(pd, hAX)
	case uop.KindMovzxRM8:
		e.addr(u)
		e.checkRd(1, e.rf(i, u.EIP, 1, 1), false)
		a.loadG(hAX, hCX, 1, false)
		a.storeM(pd, hAX)
	case uop.KindMovzxRM16:
		e.addr(u)
		e.checkRd(2, e.rf(i, u.EIP, 2, 1), false)
		a.loadG(hAX, hCX, 2, false)
		a.storeM(pd, hAX)
	case uop.KindMovsxRR8:
		a.loadM(hAX, ps)
		if ssh != 0 {
			a.shiftRI(shrExt, hAX, ssh)
		}
		a.widenRR(0xBE, hAX, hAX)
		a.storeM(pd, hAX)
	case uop.KindMovsxRR16:
		a.loadM(hAX, ps)
		a.widenRR(0xBF, hAX, hAX)
		a.storeM(pd, hAX)
	case uop.KindMovsxRM8:
		e.addr(u)
		e.checkRd(1, e.rf(i, u.EIP, 1, 1), false)
		a.loadG(hAX, hCX, 1, true)
		a.storeM(pd, hAX)
	case uop.KindMovsxRM16:
		e.addr(u)
		e.checkRd(2, e.rf(i, u.EIP, 2, 1), false)
		a.loadG(hAX, hCX, 2, true)
		a.storeM(pd, hAX)

	case uop.KindXchgRR:
		a.loadM(hAX, pd)
		a.loadM(hDX, ps)
		a.storeM(pd, hDX)
		a.storeM(ps, hAX)

	// --- fully specialized 32-bit ALU forms ---
	case uop.KindAddRR:
		a.loadM(hAX, pd)
		a.loadM(hDX, ps)
		a.lea32(hR8, hAX, hDX, 1, 0)
		a.storeM(pd, hR8)
		e.recABRes(uop.FlagAdd, hAX, hDX, hR8)
	case uop.KindAddRI:
		a.loadM(hAX, pd)
		a.leaD(hR8, hAX, imm)
		a.storeM(pd, hR8)
		e.recABIRes(uop.FlagAdd, hAX, imm, hR8)
	case uop.KindSubRR:
		a.loadM(hAX, pd)
		a.loadM(hDX, ps)
		a.movRR(hR8, hAX)
		a.aluRR(aluSubMR, hR8, hDX)
		a.storeM(pd, hR8)
		e.recABRes(uop.FlagSub, hAX, hDX, hR8)
	case uop.KindSubRI:
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		a.aluRI(aluSubExt, hR8, imm)
		a.storeM(pd, hR8)
		e.recABIRes(uop.FlagSub, hAX, imm, hR8)
	case uop.KindCmpRR:
		a.loadM(hAX, pd)
		a.loadM(hDX, ps)
		a.movRR(hR8, hAX)
		a.aluRR(aluSubMR, hR8, hDX)
		e.recABRes(uop.FlagSub, hAX, hDX, hR8)
	case uop.KindCmpRI:
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		a.aluRI(aluSubExt, hR8, imm)
		e.recABIRes(uop.FlagSub, hAX, imm, hR8)
	case uop.KindAndRR, uop.KindOrRR, uop.KindXorRR, uop.KindTestRR:
		a.loadM(hAX, pd)
		a.loadM(hDX, ps)
		a.movRR(hR8, hAX)
		switch u.Kind {
		case uop.KindAndRR, uop.KindTestRR:
			a.aluRR(aluAndMR, hR8, hDX)
		case uop.KindOrRR:
			a.aluRR(aluOrMR, hR8, hDX)
		default:
			a.aluRR(aluXorMR, hR8, hDX)
		}
		if u.Kind != uop.KindTestRR {
			a.storeM(pd, hR8)
		}
		e.recLogic(uop.FlagLogic, hR8)
	case uop.KindAndRI, uop.KindOrRI, uop.KindXorRI, uop.KindTestRI:
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		switch u.Kind {
		case uop.KindAndRI, uop.KindTestRI:
			a.aluRI(aluAndExt, hR8, imm)
		case uop.KindOrRI:
			a.aluRI(aluOrExt, hR8, imm)
		default:
			a.aluRI(aluXorExt, hR8, imm)
		}
		if u.Kind != uop.KindTestRI {
			a.storeM(pd, hR8)
		}
		e.recLogic(uop.FlagLogic, hR8)

	// --- remaining ALU forms ---
	case uop.KindAluRR:
		a.loadM(hAX, pd)
		a.loadM(hDX, ps)
		wb, ok := e.alu32(aluOp, hDX, 0, true)
		if !ok {
			return false
		}
		if wb {
			a.storeM(pd, hR8)
		}
	case uop.KindAluRI:
		a.loadM(hAX, pd)
		wb, ok := e.alu32(aluOp, -1, imm, true)
		if !ok {
			return false
		}
		if wb {
			a.storeM(pd, hR8)
		}
	case uop.KindAluRM:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hDX, hCX, 4, false)
		a.loadM(hAX, pd)
		wb, ok := e.alu32(aluOp, hDX, 0, true)
		if !ok {
			return false
		}
		if wb {
			a.storeM(pd, hR8)
		}
	case uop.KindAluMR, uop.KindAluMI:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hAX, hCX, 4, false)
		var wb, ok bool
		if u.Kind == uop.KindAluMR {
			a.loadM(hDX, ps)
			wb, ok = e.alu32(aluOp, hDX, 0, true)
		} else {
			wb, ok = e.alu32(aluOp, -1, imm, true)
		}
		if !ok {
			return false
		}
		if wb {
			e.checkWr(4, e.wf(i, u.EIP, 4, 1), false)
			a.storeG(hCX, hR8, 4)
		}
	case uop.KindAlu8RR:
		e.loadByteOf(hDX, ps, ssh)
		e.loadByteOf(hAX, pd, dsh)
		wb, ok := e.alu8(aluOp, hDX, 0, true)
		if !ok {
			return false
		}
		if wb {
			a.movRR(hAX, hR8)
			e.insByte(dsh, pd)
		}
	case uop.KindAlu8RI:
		e.loadByteOf(hAX, pd, dsh)
		wb, ok := e.alu8(aluOp, -1, imm, true)
		if !ok {
			return false
		}
		if wb {
			a.movRR(hAX, hR8)
			e.insByte(dsh, pd)
		}
	case uop.KindAlu8RM:
		e.addr(u)
		e.checkRd(1, e.rf(i, u.EIP, 1, 1), false)
		a.loadG(hDX, hCX, 1, false)
		e.loadByteOf(hAX, pd, dsh)
		wb, ok := e.alu8(aluOp, hDX, 0, true)
		if !ok {
			return false
		}
		if wb {
			a.movRR(hAX, hR8)
			e.insByte(dsh, pd)
		}
	case uop.KindAlu8MR, uop.KindAlu8MI:
		e.addr(u)
		e.checkRd(1, e.rf(i, u.EIP, 1, 1), false)
		a.loadG(hAX, hCX, 1, false)
		var wb, ok bool
		if u.Kind == uop.KindAlu8MR {
			e.loadByteOf(hDX, ps, ssh)
			wb, ok = e.alu8(aluOp, hDX, 0, true)
		} else {
			wb, ok = e.alu8(aluOp, -1, imm, true)
		}
		if !ok {
			return false
		}
		if wb {
			e.checkWr(1, e.wf(i, u.EIP, 1, 1), false)
			a.storeG(hCX, hR8, 1)
		}

	case uop.KindIncR, uop.KindDecR:
		// INC/DEC preserve CF: materialize it from the current record
		// and write a Keep record carrying it (Op and KeptCF share the
		// low word; one dword store zeroes the padding like recABRes).
		if e.flOp == flUnknown {
			return false
		}
		fo, delta := uop.FlagAddKeep, uint32(1)
		if u.Kind == uop.KindDecR {
			fo, delta = uop.FlagSubKeep, ^uint32(0)
		}
		e.cfValue(hAX)
		a.loadM(hDX, pd)
		a.leaD(hR8, hDX, delta)
		a.storeM(pd, hR8)
		a.shiftRI(shlExt, hAX, 8)
		a.aluRI(aluOrExt, hAX, uint32(fo))
		a.storeM(offFlOp, hAX) // Op | KeptCF<<8
		a.storeM(offFlA, hDX)
		a.storeMI(offFlB, 1)
		a.storeMI(offFlCin, 0)
		a.storeM(offFlRes, hR8)
		e.flOp = int(fo)

	case uop.KindNegR:
		a.loadM(hDX, pd)
		a.movRR(hAX, hDX)
		a.negNot(3, hAX)
		a.storeM(pd, hAX)
		a.storeMI(offFlOp, uint32(uop.FlagSub))
		a.storeMI(offFlA, 0)
		a.storeM(offFlB, hDX)
		a.storeMI(offFlCin, 0)
		a.storeM(offFlRes, hAX)
		e.flOp = int(uop.FlagSub)
	case uop.KindNotR:
		a.loadM(hAX, pd)
		a.negNot(2, hAX)
		a.storeM(pd, hAX)

	// --- shifts ---
	case uop.KindShiftRI:
		var fo uop.FlagOp
		var ext int
		switch uop.ShOp(u.Sub) {
		case uop.ShShl:
			fo, ext = uop.FlagShl, shlExt
		case uop.ShShr:
			fo, ext = uop.FlagShr, shrExt
		default:
			fo, ext = uop.FlagSar, sarExt
		}
		a.loadM(hDX, pd)
		a.movRR(hAX, hDX)
		if n := byte(imm & 31); n != 0 {
			a.shiftRI(ext, hAX, n)
		}
		a.storeM(pd, hAX)
		e.recABIRes(fo, hDX, imm, hAX)
	case uop.KindShiftRCL:
		var fo uop.FlagOp
		var ext int
		switch uop.ShOp(u.Sub) {
		case uop.ShShl:
			fo, ext = uop.FlagShl, shlExt
		case uop.ShShr:
			fo, ext = uop.FlagShr, shrExt
		default:
			fo, ext = uop.FlagSar, sarExt
		}
		a.loadM(hCX, rECX)
		a.aluRI(aluAndExt, hCX, 31)
		f := a.jcc32(byte(x86.CCE)) // count 0: no write, no record
		a.loadM(hDX, pd)
		a.movRR(hAX, hDX)
		a.shiftCL(ext, hAX)
		a.storeM(pd, hAX)
		a.storeMI(offFlOp, uint32(fo))
		a.storeM(offFlA, hDX)
		a.storeM(offFlB, hCX)
		a.storeMI(offFlCin, 0)
		a.storeM(offFlRes, hAX)
		a.patch(f)
		e.flOp = flUnknown // record written only when the count was nonzero

	// --- multiply / divide ---
	case uop.KindImulRR, uop.KindImulRRI:
		if u.Kind == uop.KindImulRR {
			a.loadM(hAX, pd)
		} else {
			a.movRI(hAX, imm)
		}
		a.loadM(hDX, ps)
		a.imulRR(hAX, hDX)
		a.setccM(byte(x86.CCO), offCF)
		a.setccM(byte(x86.CCO), offOF)
		a.storeM(regOff(u.Dst), hAX)
		e.recSZP(hAX)
	case uop.KindImulRM, uop.KindImulRMI:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hDX, hCX, 4, false)
		if u.Kind == uop.KindImulRM {
			a.loadM(hAX, pd)
		} else {
			a.movRI(hAX, imm)
		}
		a.imulRR(hAX, hDX)
		a.setccM(byte(x86.CCO), offCF)
		a.setccM(byte(x86.CCO), offOF)
		a.storeM(regOff(u.Dst), hAX)
		e.recSZP(hAX)
	case uop.KindMulR, uop.KindMulM:
		if u.Kind == uop.KindMulR {
			a.loadM(hCX, ps)
		} else {
			e.addr(u)
			e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
			a.loadG(hCX, hCX, 4, false)
		}
		a.loadM(hAX, rEAX)
		if u.Sub != 0 {
			a.mulDiv(5, hCX) // one-operand imul: CF=OF=result doesn't fit 32
		} else {
			a.mulDiv(4, hCX) // mul: CF=OF=(edx != 0)
		}
		a.setccM(byte(x86.CCB), offCF)
		a.setccM(byte(x86.CCB), offOF)
		a.storeM(rEAX, hAX)
		a.storeM(rEDX, hDX)
		e.recSZP(hAX)
	case uop.KindDivR, uop.KindDivM:
		signed := u.Sub != 0
		sd := e.exit(Exit{Kind: ExitDivide, Uop: i, EIP: u.EIP, Started: 1})
		if u.Kind == uop.KindDivR {
			a.loadM(hCX, ps)
		} else {
			e.addr(u)
			e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
			a.loadG(hCX, hCX, 4, false)
		}
		a.testRR(hCX, hCX)
		fz := a.jcc32(byte(x86.CCE))
		e.stub(func() {
			a.storeMI(offTrapAux, 0)
			a.retStatus(sd)
		}, fz)
		if !signed {
			a.loadM(hAX, rEAX)
			a.loadM(hDX, rEDX)
			// Quotient fits 32 bits iff high(dividend) < divisor; the
			// hardware #DE cases are exactly the guest's overflow trap.
			a.aluRR(aluCmpMR, hDX, hCX)
			fo := a.jcc32(byte(x86.CCAE))
			e.stub(func() {
				a.storeMI(offTrapAux, 1)
				a.retStatus(sd)
			}, fo)
			a.mulDiv(6, hCX)
			a.storeM(rEAX, hAX)
			a.storeM(rEDX, hDX)
		} else {
			// 64/64 idiv of the sign-extended dividend: the only
			// hardware fault left is INT64_MIN / -1, pre-checked; every
			// other quotient overflow is caught after the divide.
			a.loadM(hAX, rEAX)
			a.loadM(hDX, rEDX)
			a.shiftRI64(shlExt, hDX, 32)
			a.aluRR64(aluOrMR, hAX, hDX)
			a.movsxd(hCX, hCX)
			a.aluRI64(aluCmpExt, hCX, 0xFFFFFFFF) // rcx == -1?
			fskip := a.jcc32(byte(x86.CCNE))
			a.movRI64(hDX, 0x8000000000000000)
			a.aluRR64(aluCmpMR, hAX, hDX)
			fo1 := a.jcc32(byte(x86.CCE))
			a.patch(fskip)
			a.cqo()
			a.mulDiv64(7, hCX)
			a.movsxd(hR8, hAX)
			a.aluRR64(aluCmpMR, hR8, hAX)
			fo2 := a.jcc32(byte(x86.CCNE))
			e.stub(func() {
				a.storeMI(offTrapAux, 1)
				a.retStatus(sd)
			}, fo1, fo2)
			a.storeM(rEAX, hAX)
			a.storeM(rEDX, hDX)
		}
	case uop.KindCdq:
		a.loadM(hAX, rEAX)
		a.shiftRI(sarExt, hAX, 31)
		a.storeM(rEDX, hAX)

	// --- stack ---
	case uop.KindPushR, uop.KindPushI:
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), true)
		if u.Kind == uop.KindPushR {
			a.loadM(hAX, ps)
			a.storeG(hCX, hAX, 4)
		} else {
			a.storeGI(hCX, imm, 4)
		}
		a.storeM(rESP, hCX)
	case uop.KindPushM:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hR8, hCX, 4, false)
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), true)
		a.storeG(hCX, hR8, 4)
		a.storeM(rESP, hCX)
	case uop.KindPopR:
		a.loadM(hCX, rESP)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), true)
		a.loadG(hAX, hCX, 4, false)
		a.leaD(hDX, hCX, 4)
		a.storeM(rESP, hDX)
		a.storeM(pd, hAX) // a popped ESP wins over the increment
	case uop.KindPopM:
		a.loadM(hCX, rESP)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), true)
		a.loadG(hR8, hCX, 4, false)
		a.leaD(hAX, hCX, 4)
		a.storeM(rESP, hAX)
		e.addr(u) // the store address sees the popped ESP
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), false)
		a.storeG(hCX, hR8, 4)

	case uop.KindSetccR8:
		if !e.flagsCond(cc, hAX, hR8) {
			return false
		}
		e.insByte(dsh, pd)
	case uop.KindSetccM8:
		// Condition first (mirrors the closure), then the address:
		// addr clobbers CX/DX, so the value parks in R9.
		if !e.flagsCond(cc, hR9, hR8) {
			return false
		}
		e.addr(u)
		e.checkWr(1, e.wf(i, u.EIP, 1, 1), false)
		a.storeG(hCX, hR9, 1)

	// --- flag-suppressed ALU forms ---
	case uop.KindAddRRNF, uop.KindSubRRNF, uop.KindAndRRNF, uop.KindOrRRNF, uop.KindXorRRNF:
		a.loadM(hAX, ps)
		switch u.Kind {
		case uop.KindAddRRNF:
			a.aluMR(aluAddMR, pd, hAX)
		case uop.KindSubRRNF:
			a.aluMR(aluSubMR, pd, hAX)
		case uop.KindAndRRNF:
			a.aluMR(aluAndMR, pd, hAX)
		case uop.KindOrRRNF:
			a.aluMR(aluOrMR, pd, hAX)
		default:
			a.aluMR(aluXorMR, pd, hAX)
		}
	case uop.KindAddRINF:
		a.aluMI(aluAddExt, pd, imm)
	case uop.KindSubRINF:
		a.aluMI(aluSubExt, pd, imm)
	case uop.KindAndRINF:
		a.aluMI(aluAndExt, pd, imm)
	case uop.KindOrRINF:
		a.aluMI(aluOrExt, pd, imm)
	case uop.KindXorRINF:
		a.aluMI(aluXorExt, pd, imm)
	case uop.KindIncRNF:
		a.aluMI(aluAddExt, pd, 1)
	case uop.KindDecRNF:
		a.aluMI(aluSubExt, pd, 1)
	case uop.KindShiftRINF:
		var ext int
		switch uop.ShOp(u.Sub) {
		case uop.ShShl:
			ext = shlExt
		case uop.ShShr:
			ext = shrExt
		default:
			ext = sarExt
		}
		a.loadM(hAX, pd)
		if n := byte(imm & 31); n != 0 {
			a.shiftRI(ext, hAX, n)
		}
		a.storeM(pd, hAX)
	case uop.KindShiftRCLNF:
		var ext int
		switch uop.ShOp(u.Sub) {
		case uop.ShShl:
			ext = shlExt
		case uop.ShShr:
			ext = shrExt
		default:
			ext = sarExt
		}
		a.loadM(hCX, rECX)
		a.loadM(hAX, pd)
		a.shiftCL(ext, hAX) // hardware masks the count mod 32 itself
		a.storeM(pd, hAX)

	// --- fused compare/setcc and boolean materialization ---
	case uop.KindCmpSetccRR, uop.KindCmpSetccRI, uop.KindCmpBoolRR, uop.KindCmpBoolRI:
		rr := u.Kind == uop.KindCmpSetccRR || u.Kind == uop.KindCmpBoolRR
		a.loadM(hAX, ps)
		a.movRR(hR8, hAX)
		if rr {
			a.loadM(hDX, pa)
			a.aluRR(aluSubMR, hR8, hDX)
		} else {
			a.aluRI(aluSubExt, hR8, imm)
		}
		a.movRI(hR9, 0)
		a.setcc(cc, hR9)
		if rr {
			e.recABRes(uop.FlagSub, hAX, hDX, hR8)
		} else {
			e.recABIRes(uop.FlagSub, hAX, imm, hR8)
		}
		if u.Kind == uop.KindCmpBoolRR || u.Kind == uop.KindCmpBoolRI {
			a.storeM(pd, hR9)
		} else {
			a.movRR(hAX, hR9)
			e.insByte(dsh, pd)
		}
	case uop.KindTestSetccRR, uop.KindTestSetccRI, uop.KindTestBoolRR, uop.KindTestBoolRI:
		rr := u.Kind == uop.KindTestSetccRR || u.Kind == uop.KindTestBoolRR
		a.loadM(hAX, ps)
		a.movRR(hR8, hAX)
		if rr {
			a.loadM(hDX, pa)
			a.aluRR(aluAndMR, hR8, hDX)
		} else {
			a.aluRI(aluAndExt, hR8, imm)
		}
		a.movRI(hR9, 0)
		a.setcc(cc, hR9)
		e.recLogic(uop.FlagLogic, hR8)
		if u.Kind == uop.KindTestBoolRR || u.Kind == uop.KindTestBoolRI {
			a.storeM(pd, hR9)
		} else {
			a.movRR(hAX, hR9)
			e.insByte(dsh, pd)
		}
	case uop.KindCmpBoolRRNF, uop.KindCmpBoolRINF:
		a.loadM(hAX, ps)
		if u.Kind == uop.KindCmpBoolRRNF {
			a.loadM(hDX, pa)
			a.aluRR(aluCmpMR, hAX, hDX)
		} else {
			a.aluRI(aluCmpExt, hAX, imm)
		}
		a.movRI(hR9, 0)
		a.setcc(cc, hR9)
		a.storeM(pd, hR9)
	case uop.KindTestBoolRRNF, uop.KindTestBoolRINF:
		a.loadM(hAX, ps)
		if u.Kind == uop.KindTestBoolRRNF {
			a.loadM(hDX, pa)
			a.testRR(hAX, hDX)
		} else {
			a.testRI(hAX, imm)
		}
		a.movRI(hR9, 0)
		a.setcc(cc, hR9)
		a.storeM(pd, hR9)

	// --- fused load-op ---
	case uop.KindLoadAluRR:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hAX, hCX, 4, false)
		a.storeM(pa, hAX)
		a.loadM(hAX, pd)
		a.loadM(hDX, ps)
		wb, ok := e.alu32(aluOp, hDX, 0, true)
		if !ok {
			return false
		}
		if wb {
			a.storeM(pd, hR8)
		}
	case uop.KindLoadAluRRNF:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hAX, hCX, 4, false)
		a.storeM(pa, hAX)
		// ualuQ: quiet Add/Sub/And/Or/Xor; anything else writes nothing.
		var mr byte
		switch aluOp {
		case uop.AluAdd:
			mr = aluAddMR
		case uop.AluSub:
			mr = aluSubMR
		case uop.AluAnd:
			mr = aluAndMR
		case uop.AluOr:
			mr = aluOrMR
		case uop.AluXor:
			mr = aluXorMR
		default:
			break
		}
		if mr != 0 {
			a.loadM(hAX, ps)
			a.aluMR(mr, pd, hAX)
		}

	// --- data-movement pair fusions ---
	case uop.KindMovPop:
		a.loadM(hAX, ps)
		a.storeM(pa, hAX)
		a.loadM(hCX, rESP)
		e.checkRd(4, e.rf(i, u.Imm, 4, 2), true) // pop EIP rides in Imm
		a.loadG(hAX, hCX, 4, false)
		a.leaD(hDX, hCX, 4)
		a.storeM(rESP, hDX)
		a.storeM(pd, hAX)
	case uop.KindMovPopAluRR, uop.KindMovPopAluRRNF:
		rec := u.Kind == uop.KindMovPopAluRR
		a.loadM(hAX, ps)
		a.storeM(pa, hAX)
		a.loadM(hCX, rESP)
		e.checkRd(4, e.rf(i, u.Imm, 4, 2), true)
		a.loadG(hR8, hCX, 4, false) // a = popped value
		a.leaD(hDX, hCX, 4)
		a.storeM(rESP, hDX)
		a.loadM(hDX, pa) // b = *pa, re-read as the closure does
		a.movRR(hR9, hR8)
		var fo uop.FlagOp
		switch aluOp {
		case uop.AluAdd:
			a.aluRR(aluAddMR, hR9, hDX)
			fo = uop.FlagAdd
		case uop.AluSub:
			a.aluRR(aluSubMR, hR9, hDX)
			fo = uop.FlagSub
		case uop.AluAnd:
			a.aluRR(aluAndMR, hR9, hDX)
			fo = uop.FlagLogic
		case uop.AluOr:
			a.aluRR(aluOrMR, hR9, hDX)
			fo = uop.FlagLogic
		default: // AluXor
			a.aluRR(aluXorMR, hR9, hDX)
			fo = uop.FlagLogic
		}
		if rec {
			if fo == uop.FlagLogic {
				e.recLogic(fo, hR9)
			} else {
				e.recABRes(fo, hR8, hDX, hR9)
			}
		}
		a.storeM(pd, hR9)
	case uop.KindPushLoad:
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), true)
		a.loadM(hAX, ps)
		a.storeG(hCX, hAX, 4)
		a.storeM(rESP, hCX)
		e.addr(u)
		e.checkRd(4, e.rf(i, u.Imm, 4, 2), false) // load EIP rides in Imm
		a.loadG(hAX, hCX, 4, false)
		a.storeM(pd, hAX)
	case uop.KindLoadPush:
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hAX, hCX, 4, false)
		a.storeM(pa, hAX)
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.Imm, 4, 2), true) // push EIP rides in Imm
		a.loadM(hAX, ps)                         // re-read: Src may be the loaded register
		a.storeG(hCX, hAX, 4)
		a.storeM(rESP, hCX)
	case uop.KindPushMovI:
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), true)
		a.loadM(hAX, ps)
		a.storeG(hCX, hAX, 4)
		a.storeM(rESP, hCX)
		a.storeMI(pd, imm)
	case uop.KindMovIPush:
		a.storeMI(pd, imm)
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.Disp, 4, 2), true) // push EIP rides in Disp
		a.loadM(hAX, ps)
		a.storeG(hCX, hAX, 4)
		a.storeM(rESP, hCX)
	case uop.KindMovIMov:
		a.storeMI(pd, imm)
		a.loadM(hAX, ps)
		a.storeM(pa, hAX)
	case uop.KindMovLoad:
		a.loadM(hAX, ps)
		a.storeM(pa, hAX)
		e.addr(u)
		e.checkRd(4, e.rf(i, u.Imm, 4, 2), false) // load EIP rides in Imm
		a.loadG(hAX, hCX, 4, false)
		a.storeM(pd, hAX)
	case uop.KindPopStore:
		a.loadM(hCX, rESP)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), true)
		a.loadG(hAX, hCX, 4, false)
		a.leaD(hDX, hCX, 4)
		a.storeM(rESP, hDX)
		a.storeM(pd, hAX)
		e.addr(u)
		e.checkWr(4, e.wf(i, u.Imm, 4, 2), false) // store EIP rides in Imm
		a.loadM(hAX, ps)                          // re-read: Src may be the popped register
		a.storeG(hCX, hAX, 4)

	// --- superblock guard exits ---
	case uop.KindGuard:
		// The plain guard evaluates its condition against the lazy
		// record (known statically or not at all) and leaves the
		// record untouched either way.
		e.t.Guards++
		s := e.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		if !e.flagsCond(cc, hAX, hR8) {
			return false
		}
		a.testRR(hAX, hAX)
		e.retStub(s, a.jcc32(byte(x86.CCNE)))
	case uop.KindGuardCmpRR, uop.KindGuardCmpRI:
		e.t.Guards++
		s := e.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		if u.Kind == uop.KindGuardCmpRR {
			a.loadM(hDX, ps)
			a.aluRR(aluSubMR, hR8, hDX)
			e.recABRes(uop.FlagSub, hAX, hDX, hR8) // both paths record
		} else {
			a.aluRI(aluSubExt, hR8, imm)
			e.recABIRes(uop.FlagSub, hAX, imm, hR8)
		}
		e.retStub(s, a.jcc32(cc))
	case uop.KindGuardTestRR, uop.KindGuardTestRI:
		e.t.Guards++
		s := e.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		if u.Kind == uop.KindGuardTestRR {
			a.loadM(hDX, ps)
			a.aluRR(aluAndMR, hR8, hDX)
		} else {
			a.aluRI(aluAndExt, hR8, imm)
		}
		e.recLogic(uop.FlagLogic, hR8)
		e.retStub(s, a.jcc32(cc))
	case uop.KindGuardCmpRRNF, uop.KindGuardCmpRINF:
		e.t.Guards++
		s := e.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		rr := u.Kind == uop.KindGuardCmpRRNF
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		if rr {
			a.loadM(hDX, ps)
			a.aluRR(aluSubMR, hR8, hDX)
		} else {
			a.aluRI(aluSubExt, hR8, imm)
		}
		f := a.jcc32(cc)
		e.stub(func() {
			// Exiting: the compare's flags become the visible state.
			if rr {
				e.recABRes(uop.FlagSub, hAX, hDX, hR8)
			} else {
				e.recABIRes(uop.FlagSub, hAX, imm, hR8)
			}
			a.retStatus(s)
		}, f)
	case uop.KindGuardTestRRNF, uop.KindGuardTestRINF:
		e.t.Guards++
		s := e.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		if u.Kind == uop.KindGuardTestRRNF {
			a.loadM(hDX, ps)
			a.aluRR(aluAndMR, hR8, hDX)
		} else {
			a.aluRI(aluAndExt, hR8, imm)
		}
		f := a.jcc32(cc)
		e.stub(func() {
			e.recLogic(uop.FlagLogic, hR8)
			a.retStatus(s)
		}, f)
	case uop.KindRetGuard:
		e.t.Rets++
		st := e.rf(i, u.EIP, 4, 1)
		s := e.exit(Exit{Kind: ExitRetGuard, Uop: i})
		a.loadM(hCX, rESP)
		e.checkRd(4, st, true)
		a.loadG(hAX, hCX, 4, false)
		a.leaD(hDX, hCX, 4+imm)
		a.storeM(rESP, hDX)
		a.aluRI(aluCmpExt, hAX, u.Target)
		f := a.jcc32(byte(x86.CCNE))
		e.stub(func() {
			a.storeM(offExitTgt, hAX)
			a.retStatus(s)
		}, f)

	// --- control transfers (always the trace's last micro-op) ---
	case uop.KindJmp:
		return e.emitEnd(e.end(i, u.Target))
	case uop.KindJcc:
		// The condition reads lazily-recorded flags: exit with the
		// record synced and let the glue evaluate and pick the edge.
		s := e.exit(Exit{Kind: ExitJccLazy, Uop: i, Target: u.Target})
		a.retStatus(s)
	case uop.KindCmpJccRR, uop.KindCmpJccRI:
		st := e.exit(Exit{Kind: ExitJccTaken, Uop: i, Target: u.Target})
		sf := e.exit(Exit{Kind: ExitJccFall, Uop: i, Target: u.Next})
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		if u.Kind == uop.KindCmpJccRR {
			a.loadM(hDX, ps)
			a.aluRR(aluSubMR, hR8, hDX)
			e.recABRes(uop.FlagSub, hAX, hDX, hR8)
		} else {
			a.aluRI(aluSubExt, hR8, imm)
			e.recABIRes(uop.FlagSub, hAX, imm, hR8)
		}
		e.retStub(st, a.jcc32(cc))
		a.retStatus(sf)
	case uop.KindTestJccRR, uop.KindTestJccRI:
		st := e.exit(Exit{Kind: ExitJccTaken, Uop: i, Target: u.Target})
		sf := e.exit(Exit{Kind: ExitJccFall, Uop: i, Target: u.Next})
		a.loadM(hAX, pd)
		a.movRR(hR8, hAX)
		if u.Kind == uop.KindTestJccRR {
			a.loadM(hDX, ps)
			a.aluRR(aluAndMR, hR8, hDX)
		} else {
			a.aluRI(aluAndExt, hR8, imm)
		}
		e.recLogic(uop.FlagLogic, hR8)
		e.retStub(st, a.jcc32(cc))
		a.retStatus(sf)
	case uop.KindCall:
		s := e.end(i, u.Target)
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), true)
		a.storeGI(hCX, u.Next, 4)
		a.storeM(rESP, hCX)
		return e.emitEnd(s)
	case uop.KindCallR:
		s := e.exit(Exit{Kind: ExitInd, Uop: i})
		a.loadM(hR8, ps) // target read before the push can fault
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), true)
		a.storeGI(hCX, u.Next, 4)
		a.storeM(rESP, hCX)
		a.storeM(offExitTgt, hR8)
		a.retStatus(s)
	case uop.KindCallM:
		s := e.exit(Exit{Kind: ExitInd, Uop: i})
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hR8, hCX, 4, false)
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, e.wf(i, u.EIP, 4, 1), true)
		a.storeGI(hCX, u.Next, 4)
		a.storeM(rESP, hCX)
		a.storeM(offExitTgt, hR8)
		a.retStatus(s)
	case uop.KindRet:
		s := e.exit(Exit{Kind: ExitInd, Uop: i})
		a.loadM(hCX, rESP)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), true)
		a.loadG(hAX, hCX, 4, false)
		a.leaD(hDX, hCX, 4+imm)
		a.storeM(rESP, hDX)
		a.storeM(offExitTgt, hAX)
		a.retStatus(s)
	case uop.KindPopRet:
		s1 := e.rf(i, u.EIP, 4, 1)
		s2 := e.rf(i, u.Disp, 4, 2) // ret EIP rides in Disp
		s := e.exit(Exit{Kind: ExitInd, Uop: i})
		a.loadM(hCX, rESP)
		e.checkRd(4, s1, true)
		a.loadG(hAX, hCX, 4, false)
		a.leaD(hDX, hCX, 4)
		a.storeM(rESP, hDX)
		a.storeM(pd, hAX)
		a.leaD(hCX, hCX, 4)
		e.checkRd(4, s2, true)
		a.loadG(hAX, hCX, 4, false)
		a.leaD(hDX, hCX, 4+imm)
		a.storeM(rESP, hDX)
		a.storeM(offExitTgt, hAX)
		a.retStatus(s)
	case uop.KindPushCall:
		s1 := e.wf(i, u.EIP, 4, 1)
		s2 := e.wf(i, u.Imm, 4, 2) // call EIP rides in Imm
		s := e.end(i, u.Target)
		a.loadM(hCX, rESP)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, s1, true)
		a.loadM(hAX, ps)
		a.storeG(hCX, hAX, 4)
		a.storeM(rESP, hCX)
		a.leaD(hCX, hCX, minus4)
		e.checkWr(4, s2, true)
		a.storeGI(hCX, u.Next, 4)
		a.storeM(rESP, hCX)
		return e.emitEnd(s)
	case uop.KindJmpR:
		s := e.exit(Exit{Kind: ExitInd, Uop: i})
		a.loadM(hAX, ps)
		a.storeM(offExitTgt, hAX)
		a.retStatus(s)
	case uop.KindJmpM:
		s := e.exit(Exit{Kind: ExitInd, Uop: i})
		e.addr(u)
		e.checkRd(4, e.rf(i, u.EIP, 4, 1), false)
		a.loadG(hAX, hCX, 4, false)
		a.storeM(offExitTgt, hAX)
		a.retStatus(s)
	case uop.KindInt:
		a.retStatus(e.exit(Exit{Kind: ExitInt, Uop: i, EIP: u.EIP, Started: 1}))
	case uop.KindHlt:
		s := e.exit(Exit{Kind: ExitIllegal, Uop: i, EIP: u.EIP, Started: 1})
		a.storeMI(offTrapAux, 0)
		a.retStatus(s)
	case uop.KindUd2:
		s := e.exit(Exit{Kind: ExitIllegal, Uop: i, EIP: u.EIP, Started: 1})
		a.storeMI(offTrapAux, 1)
		a.retStatus(s)

	default:
		return false
	}
	return true
}
