package tier2

import (
	"os"

	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// Compile fuses one optimized superblock trace into a Trace of flat
// closures bound to m: register operands become pointers into m.Regs,
// immediates and effective-address shapes become captured constants,
// and every exit site gets a static Exit descriptor. Returns nil when
// the trace contains a micro-op the tier cannot compile (the reference
// escapes KindString/KindGeneric, or a malformed trace); the superblock
// then simply keeps executing on the tier-1 dispatch loop.
//
// The sandbox geometry (m.Mem, m.MemLen, m.ROLimit, m.StackBase) is
// captured at compile time; it is fixed for the life of the guest
// address space, and Reset — the only event that could change it —
// drops every compiled trace with its bref.
func Compile(us []uop.Uop, entry uint32, m *Machine) *Trace {
	if i, _ := Unsupported(us); i >= 0 {
		return nil
	}
	t := &Trace{
		Entry: entry,
		Cost:  uop.Cost(us),
		NUops: len(us),
	}
	// Backend selection, read per call so the test wall can flip it with
	// t.Setenv: the default is the native machine-code emitter (the
	// closure backend measures slower than the tier-1 dispatch loop, so
	// it exists as a portable semantic reference, not a fallback). A
	// native bail — an unsupported micro-op or no executable memory —
	// leaves the superblock on tier-1.
	if os.Getenv("VXA_TIER2_BACKEND") != "closure" {
		if !nativeAvailable {
			return nil
		}
		if nativeCompile(us, entry, m, t) {
			return t
		}
		return nil
	}
	c := &comp{m: m, t: t, us: us, entry: entry,
		mem: m.Mem, mlen: m.MemLen, ro: m.ROLimit, sbase: m.StackBase}
	// Compile back to front, threading each closure's continuation: a
	// closure's fall-through is a direct call of the (one, specific)
	// next closure, so every continuation call site is monomorphic —
	// the branch predictor resolves the whole trace body, where a
	// dispatch loop would mispredict on every data-dependent transfer.
	var next func() int32
	for i := len(us) - 1; i >= 0; i-- {
		fn := c.one(i, next)
		if fn == nil {
			return nil
		}
		next = fn
	}
	t.head = next
	for i := range t.Exits {
		if t.Exits[i].Loop {
			t.Loop = true
		}
	}
	return t
}

// Unsupported returns the index and kind of the first micro-op that
// prevents tier-2 compilation, or (-1, 0) when the trace is compilable:
// the reference-interpreter escapes, and any control terminator that is
// not the final micro-op (which a well-formed superblock never
// produces).
func Unsupported(us []uop.Uop) (int, uop.Kind) {
	for i := range us {
		k := us[i].Kind
		switch k {
		case uop.KindString, uop.KindGeneric:
			return i, k
		}
		if terminatorKind(k) && i != len(us)-1 {
			return i, k
		}
	}
	if len(us) == 0 || !terminatorKind(us[len(us)-1].Kind) {
		return len(us) - 1, 0
	}
	return -1, 0
}

// terminatorKind reports the control-transfer kinds that must end a
// trace (guards and return guards are interior and not included).
func terminatorKind(k uop.Kind) bool {
	switch k {
	case uop.KindJmp, uop.KindJcc,
		uop.KindCmpJccRR, uop.KindCmpJccRI, uop.KindTestJccRR, uop.KindTestJccRI,
		uop.KindCall, uop.KindCallR, uop.KindCallM,
		uop.KindRet, uop.KindPopRet, uop.KindPushCall,
		uop.KindJmpR, uop.KindJmpM,
		uop.KindInt, uop.KindHlt, uop.KindUd2:
		return true
	}
	return false
}

// comp carries the compile-time captures shared by every closure of one
// trace.
type comp struct {
	m     *Machine
	t     *Trace
	us    []uop.Uop
	entry uint32

	mem   []byte
	mlen  uint32
	ro    uint32
	sbase uint32
}

func (c *comp) exit(e Exit) int32 {
	c.t.Exits = append(c.t.Exits, e)
	return int32(len(c.t.Exits))
}

// rf and wf allocate read/write memory-fault exits; eip is the trap
// EIP (the fused-pair spare field when started > 1).
func (c *comp) rf(i int, eip, size uint32, started int) int32 {
	return c.exit(Exit{Kind: ExitReadFault, Uop: i, EIP: eip, Size: size, Started: started})
}

func (c *comp) wf(i int, eip, size uint32, started int) int32 {
	return c.exit(Exit{Kind: ExitWriteFault, Uop: i, EIP: eip, Size: size, Started: started})
}

// end allocates the unconditional trace-end transfer, marking the loop
// back edge that lets Run iterate internally.
func (c *comp) end(i int, target uint32) int32 {
	return c.exit(Exit{Kind: ExitEnd, Uop: i, Target: target, Loop: target == c.entry})
}

// one compiles micro-op i into its closure, threading next as its
// fall-through continuation (nil for the trace terminator, which always
// exits). Every case mirrors the tier-1 handler in uexec.go exactly —
// same evaluation order, same flag records, same trap-site EIPs and
// started counts.
func (c *comp) one(i int, next func() int32) func() int32 {
	u := &c.us[i]
	m := c.m
	mem, mlen, ro, sbase := c.mem, c.mlen, c.ro, c.sbase
	// Register-operand pointers; RegZero (8) reads as the pinned zero slot.
	pd, ps := &m.Regs[u.Dst], &m.Regs[u.Src]
	pb, pi := &m.Regs[u.Base], &m.Regs[u.Idx]
	// Aux is a register operand only for the kinds that dereference pa;
	// guards reuse it as a chain-slot index, which may exceed the file.
	pa := &m.Regs[uop.RegZero]
	if int(u.Aux) < len(m.Regs) {
		pa = &m.Regs[u.Aux]
	}
	pesp, pecx := &m.Regs[x86.ESP], &m.Regs[x86.ECX]
	peax, pedx := &m.Regs[x86.EAX], &m.Regs[x86.EDX]
	imm, disp, scale := u.Imm, u.Disp, uint32(u.Scale)
	dsh, ssh := u.Dsh, u.Ssh
	cc := x86.CC(u.Sub)
	aluOp := uop.AluOp(u.Sub)

	switch u.Kind {
	case uop.KindNop:
		return next // a Nop costs literally nothing

	// --- moves ---
	case uop.KindMovRR:
		return func() int32 { *pd = *ps; return next() }
	case uop.KindMovRI:
		return func() int32 { *pd = imm; return next() }
	case uop.KindMovRR8:
		return func() int32 {
			val := (*ps >> ssh) & 0xFF
			*pd = *pd&^(uint32(0xFF)<<dsh) | val<<dsh
			return next()
		}
	case uop.KindMovRI8:
		return func() int32 {
			*pd = *pd&^(uint32(0xFF)<<dsh) | (imm&0xFF)<<dsh
			return next()
		}
	case uop.KindLoad:
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pd = le32(mem, addr)
			return next()
		}
	case uop.KindLoad8:
		s := c.rf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 1, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pd = *pd&^(uint32(0xFF)<<dsh) | uint32(mem[addr])<<dsh
			return next()
		}
	case uop.KindStore:
		s := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.wrOK(addr, 4, ro, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			st32(mem, addr, *ps)
			return next()
		}
	case uop.KindStore8:
		s := c.wf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.wrOK(addr, 1, ro, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			mem[addr] = byte(*ps >> ssh)
			return next()
		}
	case uop.KindStoreI:
		s := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.wrOK(addr, 4, ro, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			st32(mem, addr, imm)
			return next()
		}
	case uop.KindStoreI8:
		s := c.wf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.wrOK(addr, 1, ro, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			mem[addr] = byte(imm)
			return next()
		}
	case uop.KindLea:
		return func() int32 { *pd = disp + *pb + *pi*scale; return next() }

	// --- widening moves ---
	case uop.KindMovzxRR8:
		return func() int32 { *pd = (*ps >> ssh) & 0xFF; return next() }
	case uop.KindMovzxRR16:
		return func() int32 { *pd = *ps & 0xFFFF; return next() }
	case uop.KindMovzxRM8:
		s := c.rf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 1, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pd = uint32(mem[addr])
			return next()
		}
	case uop.KindMovzxRM16:
		s := c.rf(i, u.EIP, 2, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 2, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pd = uint32(mem[addr]) | uint32(mem[addr+1])<<8
			return next()
		}
	case uop.KindMovsxRR8:
		return func() int32 { *pd = uint32(int32(int8(*ps >> ssh))); return next() }
	case uop.KindMovsxRR16:
		return func() int32 { *pd = uint32(int32(int16(*ps))); return next() }
	case uop.KindMovsxRM8:
		s := c.rf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 1, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pd = uint32(int32(int8(mem[addr])))
			return next()
		}
	case uop.KindMovsxRM16:
		s := c.rf(i, u.EIP, 2, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 2, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pd = uint32(int32(int16(uint32(mem[addr]) | uint32(mem[addr+1])<<8)))
			return next()
		}

	case uop.KindXchgRR:
		return func() int32 { *pd, *ps = *ps, *pd; return next() }

	// --- fully specialized 32-bit ALU forms ---
	case uop.KindAddRR:
		return func() int32 {
			a, b := *pd, *ps
			res := a + b
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagAdd, A: a, B: b, Res: res}
			return next()
		}
	case uop.KindAddRI:
		return func() int32 {
			a := *pd
			res := a + imm
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagAdd, A: a, B: imm, Res: res}
			return next()
		}
	case uop.KindSubRR:
		return func() int32 {
			a, b := *pd, *ps
			res := a - b
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: res}
			return next()
		}
	case uop.KindSubRI:
		return func() int32 {
			a := *pd
			res := a - imm
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: imm, Res: res}
			return next()
		}
	case uop.KindCmpRR:
		return func() int32 {
			a, b := *pd, *ps
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
			return next()
		}
	case uop.KindCmpRI:
		return func() int32 {
			a := *pd
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: imm, Res: a - imm}
			return next()
		}
	case uop.KindAndRR:
		return func() int32 {
			res := *pd & *ps
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			return next()
		}
	case uop.KindAndRI:
		return func() int32 {
			res := *pd & imm
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			return next()
		}
	case uop.KindOrRR:
		return func() int32 {
			res := *pd | *ps
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			return next()
		}
	case uop.KindOrRI:
		return func() int32 {
			res := *pd | imm
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			return next()
		}
	case uop.KindXorRR:
		return func() int32 {
			res := *pd ^ *ps
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			return next()
		}
	case uop.KindXorRI:
		return func() int32 {
			res := *pd ^ imm
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			return next()
		}
	case uop.KindTestRR:
		return func() int32 {
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: *pd & *ps}
			return next()
		}
	case uop.KindTestRI:
		return func() int32 {
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: *pd & imm}
			return next()
		}

	// --- remaining ALU forms (ADC/SBB, memory, byte operands) ---
	case uop.KindAluRR:
		return func() int32 {
			if res, wb := m.ualu(aluOp, *pd, *ps); wb {
				*pd = res
			}
			return next()
		}
	case uop.KindAluRI:
		return func() int32 {
			if res, wb := m.ualu(aluOp, *pd, imm); wb {
				*pd = res
			}
			return next()
		}
	case uop.KindAluRM:
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			if res, wb := m.ualu(aluOp, *pd, le32(mem, addr)); wb {
				*pd = res
			}
			return next()
		}
	case uop.KindAluMR:
		sr := c.rf(i, u.EIP, 4, 1)
		sw := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			if res, wb := m.ualu(aluOp, le32(mem, addr), *ps); wb {
				if !m.wrOK(addr, 4, ro, sbase, mlen) {
					m.TrapAddr = addr
					return sw
				}
				st32(mem, addr, res)
			}
			return next()
		}
	case uop.KindAluMI:
		sr := c.rf(i, u.EIP, 4, 1)
		sw := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			if res, wb := m.ualu(aluOp, le32(mem, addr), imm); wb {
				if !m.wrOK(addr, 4, ro, sbase, mlen) {
					m.TrapAddr = addr
					return sw
				}
				st32(mem, addr, res)
			}
			return next()
		}
	case uop.KindAlu8RR:
		return func() int32 {
			if res, wb := m.ualu8(aluOp, (*pd>>dsh)&0xFF, (*ps>>ssh)&0xFF); wb {
				*pd = *pd&^(uint32(0xFF)<<dsh) | (res&0xFF)<<dsh
			}
			return next()
		}
	case uop.KindAlu8RI:
		return func() int32 {
			if res, wb := m.ualu8(aluOp, (*pd>>dsh)&0xFF, imm); wb {
				*pd = *pd&^(uint32(0xFF)<<dsh) | (res&0xFF)<<dsh
			}
			return next()
		}
	case uop.KindAlu8RM:
		s := c.rf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 1, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			if res, wb := m.ualu8(aluOp, (*pd>>dsh)&0xFF, uint32(mem[addr])); wb {
				*pd = *pd&^(uint32(0xFF)<<dsh) | (res&0xFF)<<dsh
			}
			return next()
		}
	case uop.KindAlu8MR:
		sr := c.rf(i, u.EIP, 1, 1)
		sw := c.wf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 1, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			if res, wb := m.ualu8(aluOp, uint32(mem[addr]), (*ps>>ssh)&0xFF); wb {
				if !m.wrOK(addr, 1, ro, sbase, mlen) {
					m.TrapAddr = addr
					return sw
				}
				mem[addr] = byte(res)
			}
			return next()
		}
	case uop.KindAlu8MI:
		sr := c.rf(i, u.EIP, 1, 1)
		sw := c.wf(i, u.EIP, 1, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 1, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			if res, wb := m.ualu8(aluOp, uint32(mem[addr]), imm); wb {
				if !m.wrOK(addr, 1, ro, sbase, mlen) {
					m.TrapAddr = addr
					return sw
				}
				mem[addr] = byte(res)
			}
			return next()
		}

	case uop.KindIncR:
		return func() int32 {
			cf := m.fCF() // INC preserves CF
			val := *pd
			res := val + 1
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagAddKeep, A: val, B: 1, Res: res, KeptCF: cf}
			return next()
		}
	case uop.KindDecR:
		return func() int32 {
			cf := m.fCF() // DEC preserves CF
			val := *pd
			res := val - 1
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagSubKeep, A: val, B: 1, Res: res, KeptCF: cf}
			return next()
		}
	case uop.KindNegR:
		return func() int32 {
			val := *pd
			res := -val
			*pd = res
			m.Fl = uop.Flags{Op: uop.FlagSub, A: 0, B: val, Res: res}
			return next()
		}
	case uop.KindNotR:
		return func() int32 { *pd = ^*pd; return next() }

	// --- shifts ---
	case uop.KindShiftRI:
		switch uop.ShOp(u.Sub) {
		case uop.ShShl:
			return func() int32 {
				val := *pd
				res := val << imm
				*pd = res
				m.Fl = uop.Flags{Op: uop.FlagShl, A: val, B: imm, Res: res}
				return next()
			}
		case uop.ShShr:
			return func() int32 {
				val := *pd
				res := val >> imm
				*pd = res
				m.Fl = uop.Flags{Op: uop.FlagShr, A: val, B: imm, Res: res}
				return next()
			}
		default: // ShSar
			return func() int32 {
				val := *pd
				res := uint32(int32(val) >> imm)
				*pd = res
				m.Fl = uop.Flags{Op: uop.FlagSar, A: val, B: imm, Res: res}
				return next()
			}
		}
	case uop.KindShiftRCL:
		shop := uop.ShOp(u.Sub)
		return func() int32 {
			count := *pecx & 31
			if count == 0 {
				return next()
			}
			val := *pd
			var res uint32
			var fo uop.FlagOp
			switch shop {
			case uop.ShShl:
				res, fo = val<<count, uop.FlagShl
			case uop.ShShr:
				res, fo = val>>count, uop.FlagShr
			default: // ShSar
				res, fo = uint32(int32(val)>>count), uop.FlagSar
			}
			*pd = res
			m.Fl = uop.Flags{Op: fo, A: val, B: count, Res: res}
			return next()
		}

	// --- multiply / divide ---
	case uop.KindImulRR:
		dst := u.Dst
		return func() int32 { m.uimul(dst, *pd, *ps); return next() }
	case uop.KindImulRM:
		dst := u.Dst
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			m.uimul(dst, *pd, le32(mem, addr))
			return next()
		}
	case uop.KindImulRRI:
		dst := u.Dst
		return func() int32 { m.uimul(dst, imm, *ps); return next() }
	case uop.KindImulRMI:
		dst := u.Dst
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			m.uimul(dst, imm, le32(mem, addr))
			return next()
		}
	case uop.KindMulR:
		signed := u.Sub != 0
		return func() int32 { m.umul1(*ps, signed); return next() }
	case uop.KindMulM:
		signed := u.Sub != 0
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			m.umul1(le32(mem, addr), signed)
			return next()
		}
	case uop.KindDivR:
		signed := u.Sub != 0
		s := c.exit(Exit{Kind: ExitDivide, Uop: i, EIP: u.EIP, Started: 1})
		return func() int32 {
			if !m.udiv(*ps, signed) {
				return s
			}
			return next()
		}
	case uop.KindDivM:
		signed := u.Sub != 0
		sr := c.rf(i, u.EIP, 4, 1)
		sd := c.exit(Exit{Kind: ExitDivide, Uop: i, EIP: u.EIP, Started: 1})
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			if !m.udiv(le32(mem, addr), signed) {
				return sd
			}
			return next()
		}
	case uop.KindCdq:
		return func() int32 {
			*pedx = uint32(int32(*peax) >> 31)
			return next()
		}

	// --- stack ---
	case uop.KindPushR:
		s := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return s
			}
			st32(mem, sp, *ps)
			*pesp = sp
			return next()
		}
	case uop.KindPushI:
		s := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return s
			}
			st32(mem, sp, imm)
			*pesp = sp
			return next()
		}
	case uop.KindPushM:
		sr := c.rf(i, u.EIP, 4, 1)
		sw := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			val := le32(mem, addr)
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return sw
			}
			st32(mem, sp, val)
			*pesp = sp
			return next()
		}
	case uop.KindPopR:
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return s
			}
			*pesp = sp + 4
			*pd = le32(mem, sp) // a popped ESP wins over the increment
			return next()
		}
	case uop.KindPopM:
		sr := c.rf(i, u.EIP, 4, 1)
		sw := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return sr
			}
			val := le32(mem, sp)
			*pesp = sp + 4
			addr := disp + *pb + *pi*scale // the store address sees the popped ESP
			if !m.wrOK(addr, 4, ro, sbase, mlen) {
				m.TrapAddr = addr
				return sw
			}
			st32(mem, addr, val)
			return next()
		}

	// --- setcc ---
	case uop.KindSetccR8:
		return func() int32 {
			var val uint32
			if m.ucond(cc) {
				val = 1
			}
			*pd = *pd&^(uint32(0xFF)<<dsh) | val<<dsh
			return next()
		}
	case uop.KindSetccM8:
		s := c.wf(i, u.EIP, 1, 1)
		return func() int32 {
			var val uint32
			if m.ucond(cc) {
				val = 1
			}
			addr := disp + *pb + *pi*scale
			if !m.wrOK(addr, 1, ro, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			mem[addr] = byte(val)
			return next()
		}

	// --- flag-suppressed ALU forms ---
	case uop.KindAddRRNF:
		return func() int32 { *pd += *ps; return next() }
	case uop.KindAddRINF:
		return func() int32 { *pd += imm; return next() }
	case uop.KindSubRRNF:
		return func() int32 { *pd -= *ps; return next() }
	case uop.KindSubRINF:
		return func() int32 { *pd -= imm; return next() }
	case uop.KindAndRRNF:
		return func() int32 { *pd &= *ps; return next() }
	case uop.KindAndRINF:
		return func() int32 { *pd &= imm; return next() }
	case uop.KindOrRRNF:
		return func() int32 { *pd |= *ps; return next() }
	case uop.KindOrRINF:
		return func() int32 { *pd |= imm; return next() }
	case uop.KindXorRRNF:
		return func() int32 { *pd ^= *ps; return next() }
	case uop.KindXorRINF:
		return func() int32 { *pd ^= imm; return next() }
	case uop.KindIncRNF:
		return func() int32 { *pd++; return next() }
	case uop.KindDecRNF:
		return func() int32 { *pd--; return next() }
	case uop.KindShiftRINF:
		switch uop.ShOp(u.Sub) {
		case uop.ShShl:
			return func() int32 { *pd <<= imm; return next() }
		case uop.ShShr:
			return func() int32 { *pd >>= imm; return next() }
		default: // ShSar
			return func() int32 { *pd = uint32(int32(*pd) >> imm); return next() }
		}
	case uop.KindShiftRCLNF:
		shop := uop.ShOp(u.Sub)
		return func() int32 {
			count := *pecx & 31
			if count == 0 {
				return next()
			}
			switch shop {
			case uop.ShShl:
				*pd <<= count
			case uop.ShShr:
				*pd >>= count
			default: // ShSar
				*pd = uint32(int32(*pd) >> count)
			}
			return next()
		}

	// --- fused compare/setcc and boolean materialization ---
	case uop.KindCmpSetccRR, uop.KindCmpSetccRI:
		rr := u.Kind == uop.KindCmpSetccRR
		return func() int32 {
			a, b := *ps, imm
			if rr {
				b = *pa
			}
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
			var val uint32
			if condSub(cc, a, b) {
				val = 1
			}
			*pd = *pd&^(uint32(0xFF)<<dsh) | val<<dsh
			return next()
		}
	case uop.KindTestSetccRR, uop.KindTestSetccRI:
		rr := u.Kind == uop.KindTestSetccRR
		return func() int32 {
			res := *ps & imm
			if rr {
				res = *ps & *pa
			}
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			var val uint32
			if condLogic(cc, res) {
				val = 1
			}
			*pd = *pd&^(uint32(0xFF)<<dsh) | val<<dsh
			return next()
		}
	case uop.KindCmpBoolRR, uop.KindCmpBoolRI:
		rr := u.Kind == uop.KindCmpBoolRR
		return func() int32 {
			a, b := *ps, imm
			if rr {
				b = *pa
			}
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
			var val uint32
			if condSub(cc, a, b) {
				val = 1
			}
			*pd = val
			return next()
		}
	case uop.KindTestBoolRR, uop.KindTestBoolRI:
		rr := u.Kind == uop.KindTestBoolRR
		return func() int32 {
			res := *ps & imm
			if rr {
				res = *ps & *pa
			}
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			var val uint32
			if condLogic(cc, res) {
				val = 1
			}
			*pd = val
			return next()
		}
	case uop.KindCmpBoolRRNF, uop.KindCmpBoolRINF:
		rr := u.Kind == uop.KindCmpBoolRRNF
		return func() int32 {
			a, b := *ps, imm
			if rr {
				b = *pa
			}
			var val uint32
			if condSub(cc, a, b) {
				val = 1
			}
			*pd = val
			return next()
		}
	case uop.KindTestBoolRRNF, uop.KindTestBoolRINF:
		rr := u.Kind == uop.KindTestBoolRRNF
		return func() int32 {
			res := *ps & imm
			if rr {
				res = *ps & *pa
			}
			var val uint32
			if condLogic(cc, res) {
				val = 1
			}
			*pd = val
			return next()
		}

	// --- fused load-op ---
	case uop.KindLoadAluRR:
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pa = le32(mem, addr)
			if res, wb := m.ualu(aluOp, *pd, *ps); wb {
				*pd = res
			}
			return next()
		}
	case uop.KindLoadAluRRNF:
		s := c.rf(i, u.EIP, 4, 1)
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pa = le32(mem, addr)
			if res, wb := ualuQ(aluOp, *pd, *ps); wb {
				*pd = res
			}
			return next()
		}

	// --- data-movement pair fusions ---
	case uop.KindMovPop:
		s := c.rf(i, u.Imm, 4, 2) // pop EIP rides in Imm
		return func() int32 {
			*pa = *ps
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return s
			}
			*pesp = sp + 4
			*pd = le32(mem, sp)
			return next()
		}
	case uop.KindMovPopAluRR, uop.KindMovPopAluRRNF:
		rec := u.Kind == uop.KindMovPopAluRR
		s := c.rf(i, u.Imm, 4, 2)
		return func() int32 {
			*pa = *ps
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return s
			}
			*pesp = sp + 4
			a, b := le32(mem, sp), *pa
			var res uint32
			switch aluOp {
			case uop.AluAdd:
				res = a + b
				if rec {
					m.Fl = uop.Flags{Op: uop.FlagAdd, A: a, B: b, Res: res}
				}
			case uop.AluSub:
				res = a - b
				if rec {
					m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: res}
				}
			case uop.AluAnd:
				res = a & b
				if rec {
					m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
				}
			case uop.AluOr:
				res = a | b
				if rec {
					m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
				}
			default: // AluXor
				res = a ^ b
				if rec {
					m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
				}
			}
			*pd = res
			return next()
		}
	case uop.KindPushLoad:
		sw := c.wf(i, u.EIP, 4, 1)
		sr := c.rf(i, u.Imm, 4, 2) // load EIP rides in Imm
		return func() int32 {
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return sw
			}
			st32(mem, sp, *ps)
			*pesp = sp
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			*pd = le32(mem, addr)
			return next()
		}
	case uop.KindLoadPush:
		sr := c.rf(i, u.EIP, 4, 1)
		sw := c.wf(i, u.Imm, 4, 2) // push EIP rides in Imm
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			*pa = le32(mem, addr)
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return sw
			}
			st32(mem, sp, *ps)
			*pesp = sp
			return next()
		}
	case uop.KindPushMovI:
		s := c.wf(i, u.EIP, 4, 1)
		return func() int32 {
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return s
			}
			st32(mem, sp, *ps)
			*pesp = sp
			*pd = imm
			return next()
		}
	case uop.KindMovIPush:
		s := c.wf(i, u.Disp, 4, 2) // push EIP rides in Disp
		return func() int32 {
			*pd = imm
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return s
			}
			st32(mem, sp, *ps)
			*pesp = sp
			return next()
		}
	case uop.KindMovIMov:
		return func() int32 {
			*pd = imm
			*pa = *ps
			return next()
		}
	case uop.KindMovLoad:
		s := c.rf(i, u.Imm, 4, 2) // load EIP rides in Imm
		return func() int32 {
			*pa = *ps
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return s
			}
			*pd = le32(mem, addr)
			return next()
		}
	case uop.KindPopStore:
		sr := c.rf(i, u.EIP, 4, 1)
		sw := c.wf(i, u.Imm, 4, 2) // store EIP rides in Imm
		return func() int32 {
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return sr
			}
			*pesp = sp + 4
			*pd = le32(mem, sp) // a popped ESP wins over the increment
			addr := disp + *pb + *pi*scale
			if !m.wrOK(addr, 4, ro, sbase, mlen) {
				m.TrapAddr = addr
				return sw
			}
			st32(mem, addr, *ps)
			return next()
		}

	// --- superblock guard exits ---
	case uop.KindGuard:
		c.t.Guards++
		s := c.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		return func() int32 {
			if !m.ucond(cc) {
				return next() // stay on the trace
			}
			return s
		}
	case uop.KindGuardCmpRR, uop.KindGuardCmpRI:
		c.t.Guards++
		rr := u.Kind == uop.KindGuardCmpRR
		s := c.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		return func() int32 {
			a, b := *pd, imm
			if rr {
				b = *ps
			}
			// The compare executes on both paths: record its flags.
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
			if !condSub(cc, a, b) {
				return next()
			}
			return s
		}
	case uop.KindGuardTestRR, uop.KindGuardTestRI:
		c.t.Guards++
		rr := u.Kind == uop.KindGuardTestRR
		s := c.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		return func() int32 {
			res := *pd & imm
			if rr {
				res = *pd & *ps
			}
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			if !condLogic(cc, res) {
				return next()
			}
			return s
		}
	case uop.KindGuardCmpRRNF, uop.KindGuardCmpRINF:
		c.t.Guards++
		rr := u.Kind == uop.KindGuardCmpRRNF
		s := c.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		return func() int32 {
			a, b := *pd, imm
			if rr {
				b = *ps
			}
			if !condSub(cc, a, b) {
				return next() // flags provably dead on the trace
			}
			// Exiting: the compare's flags become the visible state.
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
			return s
		}
	case uop.KindGuardTestRRNF, uop.KindGuardTestRINF:
		c.t.Guards++
		rr := u.Kind == uop.KindGuardTestRRNF
		s := c.exit(Exit{Kind: ExitGuard, Uop: i, Target: u.Target})
		return func() int32 {
			res := *pd & imm
			if rr {
				res = *pd & *ps
			}
			if !condLogic(cc, res) {
				return next()
			}
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			return s
		}
	case uop.KindRetGuard:
		c.t.Rets++
		want := u.Target
		st := c.rf(i, u.EIP, 4, 1)
		s := c.exit(Exit{Kind: ExitRetGuard, Uop: i})
		return func() int32 {
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return st
			}
			target := le32(mem, sp)
			*pesp = sp + 4 + imm
			if target == want {
				return next() // the inlined return: stay on the trace
			}
			m.ExitTarget = target
			return s
		}

	// --- control transfers (always the trace's last micro-op) ---
	case uop.KindJmp:
		s := c.end(i, u.Target)
		return func() int32 { return s }
	case uop.KindJcc:
		st := c.exit(Exit{Kind: ExitJccTaken, Uop: i, Target: u.Target})
		sf := c.exit(Exit{Kind: ExitJccFall, Uop: i, Target: u.Next})
		return func() int32 {
			if m.ucond(cc) {
				return st
			}
			return sf
		}
	case uop.KindCmpJccRR, uop.KindCmpJccRI:
		rr := u.Kind == uop.KindCmpJccRR
		st := c.exit(Exit{Kind: ExitJccTaken, Uop: i, Target: u.Target})
		sf := c.exit(Exit{Kind: ExitJccFall, Uop: i, Target: u.Next})
		return func() int32 {
			a, b := *pd, imm
			if rr {
				b = *ps
			}
			m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
			if condSub(cc, a, b) {
				return st
			}
			return sf
		}
	case uop.KindTestJccRR, uop.KindTestJccRI:
		rr := u.Kind == uop.KindTestJccRR
		st := c.exit(Exit{Kind: ExitJccTaken, Uop: i, Target: u.Target})
		sf := c.exit(Exit{Kind: ExitJccFall, Uop: i, Target: u.Next})
		return func() int32 {
			res := *pd & imm
			if rr {
				res = *pd & *ps
			}
			m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
			if condLogic(cc, res) {
				return st
			}
			return sf
		}
	case uop.KindCall:
		next := u.Next
		sw := c.wf(i, u.EIP, 4, 1)
		s := c.end(i, u.Target)
		return func() int32 {
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return sw
			}
			st32(mem, sp, next)
			*pesp = sp
			return s
		}
	case uop.KindCallR:
		next := u.Next
		sw := c.wf(i, u.EIP, 4, 1)
		s := c.exit(Exit{Kind: ExitInd, Uop: i})
		return func() int32 {
			target := *ps
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return sw
			}
			st32(mem, sp, next)
			*pesp = sp
			m.ExitTarget = target
			return s
		}
	case uop.KindCallM:
		next := u.Next
		sr := c.rf(i, u.EIP, 4, 1)
		sw := c.wf(i, u.EIP, 4, 1)
		s := c.exit(Exit{Kind: ExitInd, Uop: i})
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			target := le32(mem, addr)
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return sw
			}
			st32(mem, sp, next)
			*pesp = sp
			m.ExitTarget = target
			return s
		}
	case uop.KindRet:
		sr := c.rf(i, u.EIP, 4, 1)
		s := c.exit(Exit{Kind: ExitInd, Uop: i})
		return func() int32 {
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return sr
			}
			target := le32(mem, sp)
			*pesp = sp + 4 + imm
			m.ExitTarget = target
			return s
		}
	case uop.KindPopRet:
		// Fusion guarantees Dst != ESP, so the RET pops sp+4.
		s1 := c.rf(i, u.EIP, 4, 1)
		s2 := c.rf(i, u.Disp, 4, 2) // ret EIP rides in Disp
		s := c.exit(Exit{Kind: ExitInd, Uop: i})
		return func() int32 {
			sp := *pesp
			if !m.rdOK(sp, 4, sbase, mlen) {
				m.TrapAddr = sp
				return s1
			}
			*pesp = sp + 4
			*pd = le32(mem, sp)
			if !m.rdOK(sp+4, 4, sbase, mlen) {
				m.TrapAddr = sp + 4
				return s2
			}
			target := le32(mem, sp+4)
			*pesp = sp + 8 + imm
			m.ExitTarget = target
			return s
		}
	case uop.KindPushCall:
		next := u.Next
		s1 := c.wf(i, u.EIP, 4, 1)
		s2 := c.wf(i, u.Imm, 4, 2) // call EIP rides in Imm
		s := c.end(i, u.Target)
		return func() int32 {
			sp := *pesp - 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return s1
			}
			st32(mem, sp, *ps)
			*pesp = sp
			sp -= 4
			if !m.wrOK(sp, 4, ro, sbase, mlen) {
				m.TrapAddr = sp
				return s2
			}
			st32(mem, sp, next)
			*pesp = sp
			return s
		}
	case uop.KindJmpR:
		s := c.exit(Exit{Kind: ExitInd, Uop: i})
		return func() int32 {
			m.ExitTarget = *ps
			return s
		}
	case uop.KindJmpM:
		sr := c.rf(i, u.EIP, 4, 1)
		s := c.exit(Exit{Kind: ExitInd, Uop: i})
		return func() int32 {
			addr := disp + *pb + *pi*scale
			if !m.rdOK(addr, 4, sbase, mlen) {
				m.TrapAddr = addr
				return sr
			}
			m.ExitTarget = le32(mem, addr)
			return s
		}
	case uop.KindInt:
		// The syscall gate always hands control back to the VM, which
		// validates the vector, runs the syscall and re-enters.
		s := c.exit(Exit{Kind: ExitInt, Uop: i, EIP: u.EIP, Started: 1})
		return func() int32 { return s }
	case uop.KindHlt:
		s := c.exit(Exit{Kind: ExitIllegal, Uop: i, EIP: u.EIP, Started: 1})
		return func() int32 { m.TrapAux = 0; return s }
	case uop.KindUd2:
		s := c.exit(Exit{Kind: ExitIllegal, Uop: i, EIP: u.EIP, Started: 1})
		return func() int32 { m.TrapAux = 1; return s }
	}
	return nil // KindString/KindGeneric and anything unknown: bail
}
