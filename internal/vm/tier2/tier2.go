// Package tier2 is the VM's second execution tier: it fuses an
// already-formed, already-optimized superblock trace (internal/vm's
// superblock.go) into a single flat sequence of Go closures compiled
// per-VM against that VM's own machine state.
//
// Where the tier-1 engine re-dispatches a giant switch per micro-op —
// re-loading operand fields and bounds-checking register indices every
// step — a tier-2 trace bakes every operand into closure captures at
// compile time: register operands become direct pointers into the
// machine's register file, immediates and effective-address shapes
// become Go constants, and each closure body is small enough for the
// compiler to register-allocate well (the tier-1 dispatch loop is far
// past the inlining/regalloc thresholds). Control flow inside a trace
// is straight-line by construction, so execution is a single pass over
// the closure array; guards either fall through (the profiled hot path)
// or return a nonzero exit status indexing a static Exit descriptor.
//
// The tier is semantically invisible. Every closure replicates its
// tier-1 handler exactly: lazy-flag records, the guard flag-recording
// rules (base guards record on both paths, NF guards only on exit),
// spare-field trap EIPs and started-instruction counts for fused pairs,
// and the per-trace fuel charge with tail refunds applied by the caller
// on early exits. Traps, guard exits, serialization and Reset all
// demote cleanly to the tier-1 uop path — the host VM rebuilds traces
// from persisted superblocks, never serializing closures.
package tier2

import (
	"math/bits"

	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// pageSize mirrors vm.PageSize (the package cannot import vm without a
// cycle); the sandbox bounds checks below must stay in lockstep with
// vm's rdOK/wrOK.
const pageSize = 0x1000

// Machine is the guest-state view a compiled trace executes against.
// The owning VM copies its architectural state in before Run and back
// out after; the sandbox geometry fields are set once per VM (the guest
// memory slice never reallocates) except Brk, which moves with setperm
// and is re-synced per entry.
type Machine struct {
	// Regs mirrors vm.VM.regs: eight architectural registers plus the
	// always-zero uop.RegZero slot that absent base/index registers
	// index. Closures capture pointers into this array, so a Machine
	// must not be copied after compilation.
	Regs [9]uint32

	// Lazy-flag state, synced with the VM's representation: the bools
	// are authoritative only while Fl.Op == uop.FlagNone.
	Fl                 uop.Flags
	CF, ZF, SF, OF, PF bool

	// Sandbox geometry. Mem/MemLen/ROLimit/StackBase are captured by
	// closures at compile time; Brk is read per access (setperm can
	// grow it between trace executions).
	Mem                        []byte
	MemLen, ROLimit, StackBase uint32
	Brk                        uint32

	// Fuel is charged Trace.Cost per iteration by Run; the caller
	// refunds unexecuted tails on guard/trap exits exactly as tier-1.
	Fuel int64

	// Cancellation/watchdog countdown, shared with the VM's
	// cancelQuantum credit: Run decrements it per iteration when
	// PollArmed and stops looping internally once it expires, so the
	// owning VM polls on the same cadence as the interpreter.
	Credit    int64
	PollArmed bool

	// Iters counts trace iterations started during the current Run
	// (loop-back traces iterate internally); the caller converts it to
	// Steps/UopsExecuted/fuel accounting.
	Iters uint64

	// FlagsMaterialized accumulates lazily-computed EFLAGS bits during
	// the current Run, mirroring the tier-1 stat.
	FlagsMaterialized uint64

	// Exit payload: the faulting address / the divide-vs-overflow and
	// hlt-vs-ud2 selector / the dynamic transfer target, valid per the
	// returned Exit's Kind.
	TrapAddr   uint32
	TrapAux    uint32
	ExitTarget uint32
}

// ExitKind classifies how a trace run ended.
type ExitKind uint8

// Exit kinds. End/JccTaken/JccFall/Ind are normal control transfers out
// of the trace; Guard/RetGuard leave mid-trace with the tail unexecuted
// (the caller refunds it); Int hands the syscall gate back to the VM;
// the *Fault/Divide/Illegal kinds are traps.
const (
	ExitEnd ExitKind = iota
	ExitJccTaken
	ExitJccFall
	ExitInd
	ExitGuard
	ExitRetGuard
	ExitInt
	ExitReadFault
	ExitWriteFault
	ExitDivide
	ExitIllegal

	// ExitJccLazy is a plain (unfused) Jcc terminator leaving a native
	// trace: the condition reads lazily-recorded flags, whose
	// materialization lives in the VM, so the trace exits with the flag
	// record synced and lets the caller evaluate the condition and pick
	// between the micro-op's Target and Next.
	ExitJccLazy
)

// Exit is one static exit descriptor: everything about an exit site
// that is known at compile time. Dynamic values (faulting address,
// indirect target) ride in the Machine.
type Exit struct {
	Kind    ExitKind
	Uop     int    // index of the exiting micro-op in the trace
	EIP     uint32 // trap-report EIP (spare-field metadata for fused pairs)
	Target  uint32 // static transfer target (End/JccTaken/JccFall/Guard)
	Size    uint32 // access size for memory faults
	Started int    // guest instructions begun within the fused op at the fault
	Loop    bool   // End exit whose target is the trace entry (loop back edge)
}

// Trace is one compiled superblock: the closure program plus its static
// exit table and accounting shape.
type Trace struct {
	// head is the trace body: for the closure backend, the first
	// micro-op's closure with every subsequent micro-op threaded as a
	// captured continuation; for the native backend, a thin shim into
	// the emitted machine code. Calling it runs the trace (native code
	// iterates loop-back edges internally, with the same fuel/credit
	// accounting Run applies for closures) and returns the 1-based exit
	// index.
	head  func() int32
	Exits []Exit

	// native marks a machine-code trace: head runs the whole
	// iterate-while-fuel-lasts loop itself, so Run must not wrap it in
	// the closure backend's accounting loop. code pins the executable
	// mapping for the life of the trace.
	native bool
	code   *execBuf

	Entry  uint32 // guest address of the trace entry
	Cost   int64  // guest instructions per full iteration (fuel units)
	NUops  int    // micro-ops per iteration (UopsExecuted units)
	Guards int    // conditional guard exits
	Rets   int    // return-guard exits
	Loop   bool   // the trace's end transfer re-enters the trace

	// NeedFlags marks a native trace that consumes the flag state it
	// was entered with: the caller must materialize the VM's lazy
	// flags (Fl.Op == FlagNone) before every entry. The native
	// compiler pins the entry representation statically instead of
	// dispatching on Fl.Op at run time; its loop back edge preserves
	// the invariant itself.
	NeedFlags bool
}

// Native reports whether the trace compiled to machine code (versus
// the closure reference backend) — surfaced in trace-plan dumps.
func (t *Trace) Native() bool { return t.native }

// Run executes the trace until it exits. The caller must have checked
// Fuel >= Cost for the first iteration; Run charges Cost per iteration
// (and Credit, when armed) and keeps iterating internally only on the
// loop back edge while fuel and the poll credit allow — so a hot loop
// spins inside one Run call, and cancellation still lands on the
// interpreter's quantum.
func (t *Trace) Run(m *Machine) *Exit {
	if t.native {
		// Native traces charge fuel/credit and iterate internally with
		// exactly this loop's discipline, emitted into the code.
		return &t.Exits[t.head()-1]
	}
	head := t.head
	for {
		m.Iters++
		m.Fuel -= t.Cost
		if m.PollArmed {
			m.Credit -= t.Cost
		}
		e := &t.Exits[head()-1]
		if e.Loop && m.Fuel >= t.Cost && (!m.PollArmed || m.Credit > 0) {
			continue
		}
		return e
	}
}

// ---- sandbox access (kept in lockstep with vm's rdOK/wrOK/le32/st32) ----

func (m *Machine) rdOK(addr, size, stackBase, memLen uint32) bool {
	return (addr >= pageSize && addr <= m.Brk-size) ||
		(addr >= stackBase && addr <= memLen-size)
}

func (m *Machine) wrOK(addr, size, roLimit, stackBase, memLen uint32) bool {
	return (addr >= roLimit && addr <= m.Brk-size) ||
		(addr >= stackBase && addr <= memLen-size)
}

// ---- lazy flag access (mirrors vm's f* accessors and ucond) ------------

func (m *Machine) fCF() bool {
	switch m.Fl.Op {
	case uop.FlagNone, uop.FlagSZP:
		return m.CF
	}
	m.FlagsMaterialized++
	return m.Fl.CF()
}

func (m *Machine) fOF() bool {
	switch m.Fl.Op {
	case uop.FlagNone, uop.FlagSZP:
		return m.OF
	}
	m.FlagsMaterialized++
	return m.Fl.OF()
}

func (m *Machine) fZF() bool {
	if m.Fl.Op == uop.FlagNone {
		return m.ZF
	}
	m.FlagsMaterialized++
	return m.Fl.ZF()
}

func (m *Machine) fSF() bool {
	if m.Fl.Op == uop.FlagNone {
		return m.SF
	}
	m.FlagsMaterialized++
	return m.Fl.SF()
}

func (m *Machine) fPF() bool {
	if m.Fl.Op == uop.FlagNone {
		return m.PF
	}
	m.FlagsMaterialized++
	return m.Fl.PF()
}

// cond evaluates a condition from the eager bools (Fl.Op == FlagNone).
func (m *Machine) cond(cc x86.CC) bool {
	switch cc {
	case x86.CCO:
		return m.OF
	case x86.CCNO:
		return !m.OF
	case x86.CCB:
		return m.CF
	case x86.CCAE:
		return !m.CF
	case x86.CCE:
		return m.ZF
	case x86.CCNE:
		return !m.ZF
	case x86.CCBE:
		return m.CF || m.ZF
	case x86.CCA:
		return !m.CF && !m.ZF
	case x86.CCS:
		return m.SF
	case x86.CCNS:
		return !m.SF
	case x86.CCP:
		return m.PF
	case x86.CCNP:
		return !m.PF
	case x86.CCL:
		return m.SF != m.OF
	case x86.CCGE:
		return m.SF == m.OF
	case x86.CCLE:
		return m.ZF || m.SF != m.OF
	default: // CCG
		return !m.ZF && m.SF == m.OF
	}
}

// ucond evaluates a condition code against the current flags, lazily
// materializing only the flags the condition reads.
func (m *Machine) ucond(cc x86.CC) bool {
	if m.Fl.Op == uop.FlagNone {
		return m.cond(cc)
	}
	switch cc {
	case x86.CCO:
		return m.fOF()
	case x86.CCNO:
		return !m.fOF()
	case x86.CCB:
		return m.fCF()
	case x86.CCAE:
		return !m.fCF()
	case x86.CCE:
		return m.fZF()
	case x86.CCNE:
		return !m.fZF()
	case x86.CCBE:
		return m.fCF() || m.fZF()
	case x86.CCA:
		return !m.fCF() && !m.fZF()
	case x86.CCS:
		return m.fSF()
	case x86.CCNS:
		return !m.fSF()
	case x86.CCP:
		return m.fPF()
	case x86.CCNP:
		return !m.fPF()
	case x86.CCL:
		return m.fSF() != m.fOF()
	case x86.CCGE:
		return m.fSF() == m.fOF()
	case x86.CCLE:
		return m.fZF() || m.fSF() != m.fOF()
	default: // CCG
		return !m.fZF() && m.fSF() == m.fOF()
	}
}

// ---- direct condition evaluation (fused compare forms) ------------------

func condSub(cc x86.CC, a, b uint32) bool {
	switch cc {
	case x86.CCO:
		return (a^b)&(a^(a-b))&0x80000000 != 0
	case x86.CCNO:
		return (a^b)&(a^(a-b))&0x80000000 == 0
	case x86.CCB:
		return a < b
	case x86.CCAE:
		return a >= b
	case x86.CCE:
		return a == b
	case x86.CCNE:
		return a != b
	case x86.CCBE:
		return a <= b
	case x86.CCA:
		return a > b
	case x86.CCS:
		return int32(a-b) < 0
	case x86.CCNS:
		return int32(a-b) >= 0
	case x86.CCP:
		return bits.OnesCount8(uint8(a-b))%2 == 0
	case x86.CCNP:
		return bits.OnesCount8(uint8(a-b))%2 != 0
	case x86.CCL:
		return int32(a) < int32(b)
	case x86.CCGE:
		return int32(a) >= int32(b)
	case x86.CCLE:
		return int32(a) <= int32(b)
	default: // CCG
		return int32(a) > int32(b)
	}
}

func condLogic(cc x86.CC, res uint32) bool {
	switch cc {
	case x86.CCO, x86.CCB:
		return false
	case x86.CCNO, x86.CCAE:
		return true
	case x86.CCE, x86.CCBE:
		return res == 0
	case x86.CCNE, x86.CCA:
		return res != 0
	case x86.CCS:
		return int32(res) < 0
	case x86.CCNS:
		return int32(res) >= 0
	case x86.CCP:
		return bits.OnesCount8(uint8(res))%2 == 0
	case x86.CCNP:
		return bits.OnesCount8(uint8(res))%2 != 0
	case x86.CCL:
		return int32(res) < 0
	case x86.CCGE:
		return int32(res) >= 0
	case x86.CCLE:
		return res == 0 || int32(res) < 0
	default: // CCG
		return res != 0 && int32(res) >= 0
	}
}

// ---- ALU / multiply / divide helpers (mirror vm's u* helpers) ----------

func (m *Machine) ualu(op uop.AluOp, a, b uint32) (uint32, bool) {
	switch op {
	case uop.AluAdd:
		res := a + b
		m.Fl = uop.Flags{Op: uop.FlagAdd, A: a, B: b, Res: res}
		return res, true
	case uop.AluAdc:
		var c uint32
		if m.fCF() {
			c = 1
		}
		res := a + b + c
		m.Fl = uop.Flags{Op: uop.FlagAdc, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluSub:
		res := a - b
		m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: res}
		return res, true
	case uop.AluSbb:
		var c uint32
		if m.fCF() {
			c = 1
		}
		res := a - b - c
		m.Fl = uop.Flags{Op: uop.FlagSbb, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluCmp:
		m.Fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
		return 0, false
	case uop.AluAnd:
		res := a & b
		m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
		return res, true
	case uop.AluOr:
		res := a | b
		m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
		return res, true
	case uop.AluXor:
		res := a ^ b
		m.Fl = uop.Flags{Op: uop.FlagLogic, Res: res}
		return res, true
	default: // AluTest
		m.Fl = uop.Flags{Op: uop.FlagLogic, Res: a & b}
		return 0, false
	}
}

func (m *Machine) ualu8(op uop.AluOp, a, b uint32) (uint32, bool) {
	switch op {
	case uop.AluAdd:
		res := (a + b) & 0xFF
		m.Fl = uop.Flags{Op: uop.FlagAdd8, A: a, B: b, Res: res}
		return res, true
	case uop.AluAdc:
		var c uint32
		if m.fCF() {
			c = 1
		}
		res := (a + b + c) & 0xFF
		m.Fl = uop.Flags{Op: uop.FlagAdc8, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluSub:
		res := (a - b) & 0xFF
		m.Fl = uop.Flags{Op: uop.FlagSub8, A: a, B: b, Res: res}
		return res, true
	case uop.AluSbb:
		var c uint32
		if m.fCF() {
			c = 1
		}
		res := (a - b - c) & 0xFF
		m.Fl = uop.Flags{Op: uop.FlagSbb8, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluCmp:
		m.Fl = uop.Flags{Op: uop.FlagSub8, A: a, B: b, Res: (a - b) & 0xFF}
		return 0, false
	case uop.AluAnd:
		res := a & b
		m.Fl = uop.Flags{Op: uop.FlagLogic8, Res: res}
		return res, true
	case uop.AluOr:
		res := a | b
		m.Fl = uop.Flags{Op: uop.FlagLogic8, Res: res}
		return res, true
	case uop.AluXor:
		res := a ^ b
		m.Fl = uop.Flags{Op: uop.FlagLogic8, Res: res}
		return res, true
	default: // AluTest
		m.Fl = uop.Flags{Op: uop.FlagLogic8, Res: a & b}
		return 0, false
	}
}

// ualuQ is the quiet ALU of the flag-suppressed fused load-op.
func ualuQ(op uop.AluOp, a, b uint32) (uint32, bool) {
	switch op {
	case uop.AluAdd:
		return a + b, true
	case uop.AluSub:
		return a - b, true
	case uop.AluAnd:
		return a & b, true
	case uop.AluOr:
		return a | b, true
	case uop.AluXor:
		return a ^ b, true
	default:
		return 0, false
	}
}

func (m *Machine) uimul(dst uint8, a, b uint32) {
	full := int64(int32(a)) * int64(int32(b))
	res := uint32(full)
	m.Regs[dst] = res
	over := full != int64(int32(res))
	m.CF, m.OF = over, over
	m.Fl.Op, m.Fl.Res = uop.FlagSZP, res
}

func (m *Machine) umul1(src uint32, signed bool) {
	if signed {
		full := int64(int32(m.Regs[x86.EAX])) * int64(int32(src))
		m.Regs[x86.EAX] = uint32(full)
		m.Regs[x86.EDX] = uint32(uint64(full) >> 32)
		over := full != int64(int32(full))
		m.CF, m.OF = over, over
		m.Fl.Op, m.Fl.Res = uop.FlagSZP, uint32(full)
		return
	}
	full := uint64(m.Regs[x86.EAX]) * uint64(src)
	m.Regs[x86.EAX] = uint32(full)
	m.Regs[x86.EDX] = uint32(full >> 32)
	over := m.Regs[x86.EDX] != 0
	m.CF, m.OF = over, over
	m.Fl.Op, m.Fl.Res = uop.FlagSZP, uint32(full)
}

// udiv reports false on a divide fault, with TrapAux 0 for divide by
// zero and 1 for quotient overflow.
func (m *Machine) udiv(src uint32, signed bool) bool {
	if src == 0 {
		m.TrapAux = 0
		return false
	}
	if signed {
		dividend := int64(uint64(m.Regs[x86.EDX])<<32 | uint64(m.Regs[x86.EAX]))
		divisor := int64(int32(src))
		q := dividend / divisor
		if q > 0x7FFFFFFF || q < -0x80000000 {
			m.TrapAux = 1
			return false
		}
		m.Regs[x86.EAX] = uint32(int32(q))
		m.Regs[x86.EDX] = uint32(int32(dividend % divisor))
		return true
	}
	dividend := uint64(m.Regs[x86.EDX])<<32 | uint64(m.Regs[x86.EAX])
	q := dividend / uint64(src)
	if q > 0xFFFFFFFF {
		m.TrapAux = 1
		return false
	}
	m.Regs[x86.EAX] = uint32(q)
	m.Regs[x86.EDX] = uint32(dividend % uint64(src))
	return true
}
