//go:build amd64 && linux

package tier2

import (
	"runtime"
	"syscall"
)

// This file is the emitter's substrate: a minimal x86-64 assembler for
// exactly the instruction shapes the trace compiler needs, plus the
// executable-memory allocator. Emitted code follows the jitcall
// convention: DI = *Machine, SI = guest memory base, AX/CX/DX/R8-R11
// scratch, status out in AX, no stack use beyond the call's own return
// address. Guest values are 32-bit throughout; every 32-bit register
// write zero-extends on amd64, so address arithmetic composed from
// 32-bit operations is automatically mod 2^32 and safe to use directly
// as an unsigned index off SI.

// Host register numbers (ModRM encoding).
const (
	hAX = 0
	hCX = 1
	hDX = 2
	hSP = 4
	hSI = 6
	hDI = 7
	hR8 = 8
	hR9 = 9
)

// ALU opcode selectors: the "r/m, reg" store forms, the "reg, r/m" load
// forms, and the /ext of the 0x81 immediate group.
const (
	aluAddMR, aluAddRM, aluAddExt = 0x01, 0x03, 0
	aluOrMR, aluOrRM, aluOrExt    = 0x09, 0x0B, 1
	aluAndMR, aluAndRM, aluAndExt = 0x21, 0x23, 4
	aluSubMR, aluSubRM, aluSubExt = 0x29, 0x2B, 5
	aluXorMR, aluXorRM, aluXorExt = 0x31, 0x33, 6
	aluCmpMR, aluCmpRM, aluCmpExt = 0x39, 0x3B, 7

	// Carry-consuming "reg, r/m" forms (no immediate group needed:
	// the flag materializer only ever folds memory operands).
	aluAdcRM = 0x13
)

// Shift /ext selectors of the 0xC1/0xD3 group.
const (
	shlExt = 4
	shrExt = 5
	sarExt = 7
)

type nasm struct {
	c []byte
}

func (a *nasm) db(bs ...byte) { a.c = append(a.c, bs...) }

func (a *nasm) d32(v uint32) {
	a.c = append(a.c, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (a *nasm) here() int32 { return int32(len(a.c)) }

// rex emits a REX prefix when any of the extension bits are needed.
func (a *nasm) rex(w bool, reg, idx, rm int) {
	b := byte(0x40)
	if w {
		b |= 8
	}
	if reg >= 8 {
		b |= 4
	}
	if idx >= 8 {
		b |= 2
	}
	if rm >= 8 {
		b |= 1
	}
	if b != 0x40 || w {
		a.db(b)
	}
}

// modrmDI emits the ModRM (+disp) addressing [rdi+off].
func (a *nasm) modrmDI(reg int, off int32) {
	if off >= -128 && off <= 127 {
		a.db(byte(0x40|(reg&7)<<3|hDI), byte(off))
		return
	}
	a.db(byte(0x80 | (reg&7)<<3 | hDI))
	a.d32(uint32(off))
}

// modrmSIX emits the ModRM+SIB addressing [rsi + rX] (scale 1).
func (a *nasm) modrmSIX(reg, idx int) {
	a.db(byte(0x00|(reg&7)<<3|4), byte(0x00|(idx&7)<<3|hSI))
}

// ---- register <-> Machine field moves -----------------------------------

// loadM: mov reg32, [rdi+off]
func (a *nasm) loadM(reg int, off int32) {
	a.rex(false, reg, 0, 0)
	a.db(0x8B)
	a.modrmDI(reg, off)
}

// loadM64: mov reg64, [rdi+off]
func (a *nasm) loadM64(reg int, off int32) {
	a.rex(true, reg, 0, 0)
	a.db(0x8B)
	a.modrmDI(reg, off)
}

// storeM: mov [rdi+off], reg32
func (a *nasm) storeM(off int32, reg int) {
	a.rex(false, reg, 0, 0)
	a.db(0x89)
	a.modrmDI(reg, off)
}

// storeMI: mov dword [rdi+off], imm32
func (a *nasm) storeMI(off int32, imm uint32) {
	a.db(0xC7)
	a.modrmDI(0, off)
	a.d32(imm)
}

// storeMI8: mov byte [rdi+off], imm8
func (a *nasm) storeMI8(off int32, imm byte) {
	a.db(0xC6)
	a.modrmDI(0, off)
	a.db(imm)
}

// storeM8: mov [rdi+off], reg8 (low byte; reg must be AX/CX/DX or R8+).
func (a *nasm) storeM8(off int32, reg int) {
	a.rex(false, reg, 0, 0)
	a.db(0x88)
	a.modrmDI(reg, off)
}

// ---- immediates and reg-reg forms ---------------------------------------

// movRI: mov reg32, imm32
func (a *nasm) movRI(reg int, imm uint32) {
	a.rex(false, 0, 0, reg)
	a.db(byte(0xB8 | reg&7))
	a.d32(imm)
}

// movRR: mov dst32, src32
func (a *nasm) movRR(dst, src int) {
	a.rex(false, src, 0, dst)
	a.db(0x89, byte(0xC0|(src&7)<<3|dst&7))
}

// aluRR emits one of the "r/m, reg" ALU forms: op dst, src.
func (a *nasm) aluRR(opMR byte, dst, src int) {
	a.rex(false, src, 0, dst)
	a.db(opMR, byte(0xC0|(src&7)<<3|dst&7))
}

// aluRI: op reg, imm32 (0x81 group).
func (a *nasm) aluRI(ext, reg int, imm uint32) {
	a.rex(false, 0, 0, reg)
	a.db(0x81, byte(0xC0|ext<<3|reg&7))
	a.d32(imm)
}

// aluRM: op reg, [rdi+off] ("reg, r/m" load forms).
func (a *nasm) aluRM(opRM byte, reg int, off int32) {
	a.rex(false, reg, 0, 0)
	a.db(opRM)
	a.modrmDI(reg, off)
}

// aluMR: op [rdi+off], reg ("r/m, reg" store forms).
func (a *nasm) aluMR(opMR byte, off int32, reg int) {
	a.rex(false, reg, 0, 0)
	a.db(opMR)
	a.modrmDI(reg, off)
}

// aluMI: op dword [rdi+off], imm32 (0x81 group).
func (a *nasm) aluMI(ext int, off int32, imm uint32) {
	a.db(0x81)
	a.modrmDI(ext, off)
	a.d32(imm)
}

// loadM8: movzx reg32, byte [rdi+off] — bool and byte Machine fields.
func (a *nasm) loadM8(reg int, off int32) {
	a.rex(false, reg, 0, 0)
	a.db(0x0F, 0xB6)
	a.modrmDI(reg, off)
}

// pushR / popR: 64-bit host-stack push/pop, for the rare spill when
// every scratch register is live across a flag materialization.
func (a *nasm) pushR(reg int) {
	if reg >= 8 {
		a.db(0x41)
	}
	a.db(byte(0x50 | reg&7))
}

func (a *nasm) popR(reg int) {
	if reg >= 8 {
		a.db(0x41)
	}
	a.db(byte(0x58 | reg&7))
}

// testRR: test r/m32, r32.
func (a *nasm) testRR(dst, src int) {
	a.rex(false, src, 0, dst)
	a.db(0x85, byte(0xC0|(src&7)<<3|dst&7))
}

// testRI: test reg, imm32.
func (a *nasm) testRI(reg int, imm uint32) {
	a.rex(false, 0, 0, reg)
	a.db(0xF7, byte(0xC0|reg&7))
	a.d32(imm)
}

// cmpMI8: cmp byte [rdi+off], imm8.
func (a *nasm) cmpMI8(off int32, imm byte) {
	a.db(0x80)
	a.modrmDI(7, off)
	a.db(imm)
}

// shiftRI: sh reg, imm (imm in 1..31).
func (a *nasm) shiftRI(ext, reg int, imm byte) {
	a.rex(false, 0, 0, reg)
	a.db(0xC1, byte(0xC0|ext<<3|reg&7), imm)
}

// shiftCL: sh reg, cl.
func (a *nasm) shiftCL(ext, reg int) {
	a.rex(false, 0, 0, reg)
	a.db(0xD3, byte(0xC0|ext<<3|reg&7))
}

// negNot: F7 /3 (neg) or /2 (not) on reg32.
func (a *nasm) negNot(ext, reg int) {
	a.rex(false, 0, 0, reg)
	a.db(0xF7, byte(0xC0|ext<<3|reg&7))
}

// imulRR: imul dst32, src32.
func (a *nasm) imulRR(dst, src int) {
	a.rex(false, dst, 0, src)
	a.db(0x0F, 0xAF, byte(0xC0|(dst&7)<<3|src&7))
}

// mulDiv: F7 /4 mul, /5 imul, /6 div, /7 idiv on reg32.
func (a *nasm) mulDiv(ext, reg int) {
	a.rex(false, 0, 0, reg)
	a.db(0xF7, byte(0xC0|ext<<3|reg&7))
}

// mulDiv64: the REX.W forms on reg64 (cqo pairs separately).
func (a *nasm) mulDiv64(ext, reg int) {
	a.rex(true, 0, 0, reg)
	a.db(0xF7, byte(0xC0|ext<<3|reg&7))
}

// movzx8/16, movsx8/16: widening reg, reg (low byte / low word).
func (a *nasm) widenRR(op byte, dst, src int) {
	a.rex(false, dst, 0, src)
	a.db(0x0F, op, byte(0xC0|(dst&7)<<3|src&7))
}

// setcc: setcc reg8 (low byte).
func (a *nasm) setcc(cc byte, reg int) {
	a.rex(false, 0, 0, reg)
	a.db(0x0F, 0x90|cc, byte(0xC0|reg&7))
}

// setccM: setcc byte [rdi+off].
func (a *nasm) setccM(cc byte, off int32) {
	a.db(0x0F, 0x90|cc)
	a.modrmDI(0, off)
}

// lea32: lea dst32, [base + idx*scale + disp] (scale 1/2/4/8).
func (a *nasm) lea32(dst, base, idx int, scale uint8, disp uint32) {
	var ss byte
	switch scale {
	case 1:
		ss = 0
	case 2:
		ss = 1
	case 4:
		ss = 2
	default:
		ss = 3
	}
	a.rex(false, dst, idx, base)
	a.db(0x8D, byte(0x80|(dst&7)<<3|4), byte(ss<<6|byte(idx&7)<<3|byte(base&7)))
	a.d32(disp)
}

// leaD: lea dst32, [base + disp] (no index).
func (a *nasm) leaD(dst, base int, disp uint32) {
	a.rex(false, dst, 0, base)
	a.db(0x8D, byte(0x80|(dst&7)<<3|base&7))
	if base&7 == 4 {
		// base SP/R12 needs a SIB with no index.
		panic("tier2: leaD on rsp-coded base")
	}
	a.d32(disp)
}

// ---- guest memory access (through SI) -----------------------------------

// loadG: load from guest memory at [rsi+addrReg]: size 4 plain, size
// 1/2 zero- or sign-extending into a 32-bit register.
func (a *nasm) loadG(reg, addrReg int, size uint32, signed bool) {
	switch {
	case size == 4:
		a.rex(false, reg, addrReg, 0)
		a.db(0x8B)
	case size == 2 && !signed:
		a.rex(false, reg, addrReg, 0)
		a.db(0x0F, 0xB7)
	case size == 2:
		a.rex(false, reg, addrReg, 0)
		a.db(0x0F, 0xBF)
	case !signed:
		a.rex(false, reg, addrReg, 0)
		a.db(0x0F, 0xB6)
	default:
		a.rex(false, reg, addrReg, 0)
		a.db(0x0F, 0xBE)
	}
	a.modrmSIX(reg, addrReg)
}

// storeG: store reg (32-bit or low byte) to guest memory at [rsi+addrReg].
func (a *nasm) storeG(addrReg, reg int, size uint32) {
	a.rex(false, reg, addrReg, 0)
	if size == 1 {
		a.db(0x88)
	} else {
		a.db(0x89)
	}
	a.modrmSIX(reg, addrReg)
}

// storeGI: mov dword [rsi+addrReg], imm32 / mov byte [...], imm8.
func (a *nasm) storeGI(addrReg int, imm uint32, size uint32) {
	a.rex(false, 0, addrReg, 0)
	if size == 1 {
		a.db(0xC6)
		a.modrmSIX(0, addrReg)
		a.db(byte(imm))
		return
	}
	a.db(0xC7)
	a.modrmSIX(0, addrReg)
	a.d32(imm)
}

// ---- control flow -------------------------------------------------------

// jcc32 emits jcc rel32 with a placeholder and returns the fixup site.
func (a *nasm) jcc32(cc byte) int32 {
	a.db(0x0F, 0x80|cc)
	p := a.here()
	a.d32(0)
	return p
}

// jmp32 emits jmp rel32 with a placeholder and returns the fixup site.
func (a *nasm) jmp32() int32 {
	a.db(0xE9)
	p := a.here()
	a.d32(0)
	return p
}

// jmpTo emits jmp rel32 to a known (usually backward) target.
func (a *nasm) jmpTo(target int32) {
	a.db(0xE9)
	rel := target - (a.here() + 4)
	a.d32(uint32(rel))
}

// jccTo emits jcc rel32 to a known target.
func (a *nasm) jccTo(cc byte, target int32) {
	a.db(0x0F, 0x80|cc)
	rel := target - (a.here() + 4)
	a.d32(uint32(rel))
}

// patch resolves a forward fixup to the current position.
func (a *nasm) patch(p int32) {
	rel := a.here() - (p + 4)
	a.c[p] = byte(rel)
	a.c[p+1] = byte(rel >> 8)
	a.c[p+2] = byte(rel >> 16)
	a.c[p+3] = byte(rel >> 24)
}

// retStatus: mov eax, status; ret.
func (a *nasm) retStatus(s int32) {
	a.movRI(hAX, uint32(s))
	a.db(0xC3)
}

// ---- 64-bit accounting helpers ------------------------------------------

// incM64: inc qword [rdi+off].
func (a *nasm) incM64(off int32) {
	a.rex(true, 0, 0, 0)
	a.db(0xFF)
	a.modrmDI(0, off)
}

// subMI64: sub qword [rdi+off], imm32 (sign-extended).
func (a *nasm) subMI64(off int32, imm uint32) {
	a.rex(true, 0, 0, 0)
	a.db(0x81)
	a.modrmDI(5, off)
	a.d32(imm)
}

// cmpMI64: cmp qword [rdi+off], imm32 (sign-extended).
func (a *nasm) cmpMI64(off int32, imm uint32) {
	a.rex(true, 0, 0, 0)
	a.db(0x81)
	a.modrmDI(7, off)
	a.d32(imm)
}

// ---- executable memory --------------------------------------------------

// sealExec copies code into a fresh anonymous mapping and seals it
// read+execute. Returns nil when the platform refuses executable
// mappings (hardened kernels); the caller then stays on tier-1.
func sealExec(code []byte) *execBuf {
	if len(code) == 0 {
		return nil
	}
	buf, err := syscall.Mmap(-1, 0, len(code),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil
	}
	copy(buf, code)
	if err := syscall.Mprotect(buf, syscall.PROT_READ|syscall.PROT_EXEC); err != nil {
		syscall.Munmap(buf)
		return nil
	}
	e := &execBuf{buf: buf}
	runtime.SetFinalizer(e, (*execBuf).release)
	return e
}

func (e *execBuf) release() {
	if e.buf != nil {
		syscall.Munmap(e.buf)
		e.buf = nil
	}
}
