//go:build !(amd64 && linux)

package tier2

import "vxa/internal/vm/uop"

// Platforms without a native emitter: tier-2 stays off by default (the
// closure backend is a portable semantic reference, not a speedup over
// the tier-1 dispatch loop) and is selectable with
// VXA_TIER2_BACKEND=closure for the differential test wall.
const nativeAvailable = false

func nativeCompile(us []uop.Uop, entry uint32, m *Machine, t *Trace) bool { return false }
