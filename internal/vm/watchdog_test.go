package vm

import (
	"bytes"
	"context"
	"testing"
	"time"

	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

// spinProgram is a guest that loops forever: fuel-hungry but, more to
// the point here, wall-expensive. The watchdog must kill it regardless
// of how much fuel remains.
func spinProgram(u *asm.Unit) {
	u.Label("start")
	u.Label("loop")
	u.Op2(x86.ADD, x86.R(x86.EAX), x86.I(1))
	u.Jmp("loop")
}

func TestWatchdogKillsSpinningGuest(t *testing.T) {
	const budget = 30 * time.Millisecond
	v, _ := buildVM(t, Config{WallBudget: budget}, nil, spinProgram)
	start := time.Now()
	_, err := v.RunStream(context.Background(), bytes.NewReader(nil), &bytes.Buffer{}, nil, DefaultFuel)
	elapsed := time.Since(start)
	if !IsWatchdog(err) {
		t.Fatalf("err = %v, want watchdog kill", err)
	}
	if IsCanceled(err) {
		t.Fatalf("watchdog kill %v must not read as a cancellation", err)
	}
	// Generous bound: the kill lands on the cancel-quantum cadence, so
	// it should arrive soon after the budget, never minutes after.
	if elapsed > budget+2*time.Second {
		t.Fatalf("watchdog took %v to fire on a %v budget", elapsed, budget)
	}
	if v.FuelRemaining() <= 0 {
		t.Fatal("guest exhausted fuel; the test did not exercise the wall path")
	}
}

// A watchdog kill leaves mid-stream garbage; Reset must hand back a
// pristine, runnable VM with the budget still armed for the next
// stream.
func TestWatchdogSurvivesReset(t *testing.T) {
	const budget = 20 * time.Millisecond
	v, _ := buildVM(t, Config{WallBudget: budget}, nil, spinProgram)
	snap := v.Snapshot()

	if _, err := v.RunStream(context.Background(), bytes.NewReader(nil), &bytes.Buffer{}, nil, DefaultFuel); !IsWatchdog(err) {
		t.Fatalf("first stream: err = %v, want watchdog kill", err)
	}
	if err := v.Reset(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunStream(context.Background(), bytes.NewReader(nil), &bytes.Buffer{}, nil, DefaultFuel); !IsWatchdog(err) {
		t.Fatalf("stream after reset: err = %v, want watchdog kill again", err)
	}

	// A VM materialized fresh from the snapshot inherits the budget too.
	v2 := snap.NewVM()
	if _, err := v2.RunStream(context.Background(), bytes.NewReader(nil), &bytes.Buffer{}, nil, DefaultFuel); !IsWatchdog(err) {
		t.Fatalf("snapshot-materialized VM: err = %v, want watchdog kill", err)
	}
}

// With no WallBudget the watchdog must stay disarmed: a well-behaved
// guest under Background context runs to completion.
func TestWatchdogDisarmedByDefault(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		sysExit(u, 0)
	})
	if _, err := v.RunStream(context.Background(), bytes.NewReader(nil), &bytes.Buffer{}, nil, DefaultFuel); err != nil {
		t.Fatalf("disarmed run: %v", err)
	}
}

// A guest that finishes within budget is untouched, and the deadline
// must not leak into the next stream (each RunStream re-arms afresh).
func TestWatchdogWithinBudget(t *testing.T) {
	v, _ := buildVM(t, Config{WallBudget: time.Minute}, nil, func(u *asm.Unit) {
		u.Label("start")
		sysExit(u, 0)
	})
	if _, err := v.RunStream(context.Background(), bytes.NewReader(nil), &bytes.Buffer{}, nil, DefaultFuel); err != nil {
		t.Fatalf("within-budget run: %v", err)
	}
	if v.wallDeadline != 0 {
		t.Fatal("deadline still armed after RunStream returned")
	}
}
