package vm

// Tier-2 guard-exit trap exactness: a compiled loop trace whose interior
// guard fires mid-trace on the final iteration, with the guard's exit
// path leading straight into a faulting instruction. The trap the guest
// observes — kind, EIP, faulting address — and the architectural state
// around it — registers, the five flags, fuel — must be identical to
// the reference engine's, which pins down the per-trace fuel charge and
// the tail refund a guard exit performs.

import (
	"encoding/binary"
	"math/rand"
	"os"
	"testing"

	"vxa/internal/x86"
)

// t2asm is a tiny forward assembler over a guest address range; branch
// displacements are patched after the target address is known.
type t2asm struct {
	t    *testing.T
	base uint32
	code []byte
}

func (a *t2asm) cur() uint32 { return a.base + uint32(len(a.code)) }

func (a *t2asm) emit(inst x86.Inst) {
	enc, err := x86.Encode(inst)
	if err != nil {
		a.t.Fatalf("encode %v: %v", inst, err)
	}
	a.code = append(a.code, enc...)
}

// patchRel32 rewrites the rel32 that ends the instruction finishing at
// end so it reaches target.
func (a *t2asm) patchRel32(end, target uint32) {
	binary.LittleEndian.PutUint32(a.code[end-a.base-4:], target-end)
}

func TestDiffTier2GuardExitTrap(t *testing.T) {
	legs := []struct {
		name string
		env  map[string]string
	}{
		{"hot-native", map[string]string{"VXA_TIER2_HOT": "1"}},
		{"hot-closure", map[string]string{"VXA_TIER2_HOT": "1", "VXA_TIER2_BACKEND": "closure"}},
		{"off", map[string]string{"VXA_NO_TIER2": "1"}},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			for k, v := range leg.env {
				t.Setenv(k, v)
			}
			runTier2GuardExitTrap(t)
		})
	}
}

func runTier2GuardExitTrap(t *testing.T) {
	const (
		fuel  = 4096
		loops = 200 // iterations before the guard finally fires
	)

	// A:    add eax, 1
	//       cmp ecx, 0
	//       je  EXIT          ; fall-dominant: becomes the trace guard
	// B:    sub ecx, 1
	//       jmp A             ; loop back edge closes the trace
	// EXIT: mov [edx], eax    ; edx points below the first page: faults
	//       ud2
	asm := &t2asm{t: t, base: diffCode}
	aAddr := asm.cur()
	asm.emit(x86.Inst{Op: x86.ADD, Dst: x86.R(x86.EAX), Src: x86.I(1)})
	asm.emit(x86.Inst{Op: x86.CMP, Dst: x86.R(x86.ECX), Src: x86.I(0)})
	asm.emit(x86.Inst{Op: x86.JCC, CC: x86.CCE, Rel: 0})
	jeEnd := asm.cur()
	asm.emit(x86.Inst{Op: x86.SUB, Dst: x86.R(x86.ECX), Src: x86.I(1)})
	asm.emit(x86.Inst{Op: x86.JMP, Rel: 0})
	exitAddr := asm.cur()
	asm.patchRel32(asm.cur(), aAddr) // jmp A
	asm.patchRel32(jeEnd, exitAddr)  // je EXIT
	asm.emit(x86.Inst{Op: x86.MOV, Dst: x86.MSIB(x86.EDX, x86.NoReg, 1, 0, 4), Src: x86.R(x86.EAX)})
	asm.emit(x86.Inst{Op: x86.UD2})

	rng := rand.New(rand.NewSource(7))
	v1 := diffVM(t) // uop engine (tier-2 per the leg's env)
	v2 := diffVM(t) // reference engine
	seedState(t, rng, v1, v2)
	v1.regs[x86.ECX], v2.regs[x86.ECX] = loops, loops
	v1.regs[x86.EDX], v2.regs[x86.EDX] = 0x10, 0x10
	v1.fuel, v2.fuel = fuel, fuel
	copy(v1.mem[diffCode:], asm.code)
	copy(v2.mem[diffCode:], asm.code)

	v1.eip = diffCode
	br, err := v1.lookupBlock(diffCode)
	if err != nil {
		t.Fatal(err)
	}
	err1 := v1.execUops(br)
	v1.materializeFlags()

	v2.eip = diffCode
	refSteps, err2 := refRun(v2, fuel)

	tr1, ok1 := err1.(*Trap)
	tr2, ok2 := err2.(*Trap)
	if !ok1 || !ok2 {
		t.Fatalf("no trap: uop %v, ref %v", err1, err2)
	}
	if tr1.Kind != tr2.Kind || tr1.EIP != tr2.EIP || tr1.Addr != tr2.Addr {
		t.Fatalf("trap diverged: uop %v, ref %v", tr1, tr2)
	}
	if tr1.EIP != exitAddr {
		t.Fatalf("trap EIP = %#x, want the guard exit path %#x", tr1.EIP, exitAddr)
	}
	for r := 0; r < 8; r++ {
		if v1.regs[r] != v2.regs[r] {
			t.Fatalf("%s = %#x (uop) vs %#x (ref)", x86.Reg(r), v1.regs[r], v2.regs[r])
		}
	}
	f1 := [5]bool{v1.cf, v1.zf, v1.sf, v1.of, v1.pf}
	f2 := [5]bool{v2.cf, v2.zf, v2.sf, v2.of, v2.pf}
	if f1 != f2 {
		t.Fatalf("flags CF/ZF/SF/OF/PF = %v (uop) vs %v (ref)", f1, f2)
	}
	// Fuel exactness across the guard exit: the trace charges its full
	// cost per iteration and the exit refunds the skipped tail, so the
	// engines must agree that every started instruction cost exactly one.
	if want := int64(fuel - refSteps - 1); v1.fuel != want {
		t.Fatalf("fuel = %d, want %d (ref started %d+1 instructions)", v1.fuel, want, refSteps)
	}

	if os.Getenv("VXA_TIER2_HOT") == "1" && !envNoTier2() {
		st := v1.Stats()
		if st.Tier2Executed == 0 {
			t.Fatalf("tier-2 forced hot but no compiled trace ran (%d compiled)", st.Tier2Compiled)
		}
		if br.sb == nil || br.sb.t2 == nil {
			t.Fatalf("loop head has no compiled superblock trace")
		}
	} else if st := v1.Stats(); st.Tier2Executed != 0 {
		t.Fatalf("tier-2 disabled but %d compiled iterations ran", st.Tier2Executed)
	}
}
