package vm

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// warmSnapshot builds the counter program, runs one stream to populate
// the translation cache, absorbs it, and returns the snapshot plus the
// first stream's output (the golden bytes every restored VM must
// reproduce).
func warmSnapshot(t *testing.T) (*Snapshot, []byte) {
	t.Helper()
	v, _ := buildVM(t, Config{MemSize: 4 << 20}, nil, counterProgram)
	snap := v.Snapshot()
	out := runStream(t, v)
	snap.AbsorbBlocks(v)
	if snap.BlockCount() == 0 {
		t.Fatal("warm snapshot has no blocks")
	}
	return snap, out
}

// TestSerializeRoundTrip: a deserialized snapshot materializes VMs that
// behave identically to the original — same guest output, and the warm
// block cache survives (no re-translation).
func TestSerializeRoundTrip(t *testing.T) {
	snap, golden := warmSnapshot(t)
	data, err := snap.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockCount() != snap.BlockCount() {
		t.Fatalf("restored %d blocks, want %d", got.BlockCount(), snap.BlockCount())
	}
	if got.Footprint() != snap.Footprint() {
		t.Fatalf("restored footprint %d, want %d", got.Footprint(), snap.Footprint())
	}
	v := got.NewVM()
	if out := runStream(t, v); !bytes.Equal(out, golden) {
		t.Fatalf("restored VM output %x, want %x", out, golden)
	}
	if built := v.Stats().BlocksBuilt; built != 0 {
		t.Fatalf("restored VM built %d blocks, want 0 (uop cache lost)", built)
	}
	// Second stream without reset continues where the first stopped —
	// restored snapshots carry live state, not just the image.
	if ctr := counterValue(t, runStream(t, v)); ctr != 1 {
		t.Fatalf("second stream counter = %d, want 1", ctr)
	}
}

// TestSerializeDeterministic: the same snapshot always serializes to
// the same bytes (blocks are emitted in address order, not map order) —
// the property that makes artifact re-save cheap to detect.
func TestSerializeDeterministic(t *testing.T) {
	snap, _ := warmSnapshot(t)
	a, err := snap.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two serializations of one snapshot differ")
	}
}

// TestDeserializeTruncated: every truncation either decodes to an error
// or (for a full-length payload) succeeds — never panics.
func TestDeserializeTruncated(t *testing.T) {
	snap, _ := warmSnapshot(t)
	data, err := snap.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{}
	for n := 0; n < len(data) && n < 256; n++ {
		lengths = append(lengths, n)
	}
	for n := 256; n < len(data); n += 4099 {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, len(data)-1)
	for _, n := range lengths {
		if _, err := Deserialize(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(data))
		}
	}
}

// TestDeserializeRejects: targeted corruptions of the structural fields
// are all refused.
func TestDeserializeRejects(t *testing.T) {
	snap, _ := warmSnapshot(t)
	data, err := snap.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian

	corrupt := func(name string, mutate func(d []byte)) {
		d := append([]byte(nil), data...)
		mutate(d)
		if _, err := Deserialize(d); err == nil {
			t.Errorf("%s: corrupted payload decoded cleanly", name)
		}
	}

	corrupt("magic", func(d []byte) { d[0] ^= 0xff })
	corrupt("engine version", func(d []byte) { le.PutUint32(d[4:], EngineVersion+1) })
	corrupt("memSize not page multiple", func(d []byte) { le.PutUint32(d[8:], le.Uint32(d[8:])+1) })
	corrupt("brk past memSize", func(d []byte) { le.PutUint32(d[12:], le.Uint32(d[8:])+PageSize) })
	corrupt("roLimit past brk", func(d []byte) { le.PutUint32(d[16:], le.Uint32(d[12:])+1) })
	corrupt("lowLen mismatch", func(d []byte) { le.PutUint32(d[80:], le.Uint32(d[80:])+1) })
	corrupt("block count overrun", func(d []byte) { le.PutUint32(d[88:], le.Uint32(d[88:])+1) })
	if _, err := Deserialize(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte decoded cleanly")
	}

	// Corrupt the first uop's Kind inside the first block. Block section
	// layout: 20-byte block header, nInsts insts (instWireLen each),
	// nInsts addrs (4 each), then the uops.
	blockOff := snapHeaderLen + int(le.Uint32(data[80:])) + int(le.Uint32(data[84:]))
	nInsts := int(le.Uint16(data[blockOff+16:]))
	uopOff := blockOff + 20 + nInsts*(instWireLen+4)
	corrupt("uop kind out of range", func(d []byte) { d[uopOff] = 0xff })
	corrupt("uop register out of range", func(d []byte) { d[uopOff+2] = 0x7f })
}
