package vm

import (
	"context"
	"fmt"
	"io"
	"time"
)

// RunStream drives one stream of the VXA decoder protocol on v: attach
// the stream's I/O, set the absolute per-stream fuel budget, and run
// until the decoder parks at the done gate or exits. A decoder that
// calls exit(0) has decoded its stream successfully — single-stream
// decoders are allowed to end that way (§4.3) — but cannot take another
// stream, so reusable is false. Every per-stream entry point (the
// archive reader, vxrun, the benchmarks) routes through this one
// function so the protocol cannot diverge between callers.
//
// ctx cancels the stream cooperatively: the executor polls it at block
// boundaries (see RunContext) and returns a *CanceledError; the caller
// owns putting the VM back through a pristine reset before reuse.
func (v *VM) RunStream(ctx context.Context, stdin io.Reader, stdout, stderr io.Writer, fuel int64) (reusable bool, err error) {
	v.Stdin, v.Stdout, v.Stderr = stdin, stdout, stderr
	v.SetFuel(fuel)
	if v.wallBudget > 0 {
		// Arm the wall-clock watchdog for this stream. The deadline
		// shares the cancellation countdown, which RunContext only
		// initializes for cancelable contexts; seed it here so the
		// watchdog fires even under context.Background().
		v.wallDeadline = time.Now().Add(v.wallBudget).UnixNano()
		if v.cancelCredit <= 0 {
			v.cancelCredit = cancelQuantum
		}
		defer func() { v.wallDeadline = 0 }()
	}
	st, err := v.RunContext(ctx)
	if err != nil {
		return false, err
	}
	if st == StatusExit && v.ExitCode() != 0 {
		return false, fmt.Errorf("decoder exit status %d", v.ExitCode())
	}
	return st == StatusDone, nil
}
