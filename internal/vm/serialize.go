package vm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// EngineVersion identifies the translation engine's serialized-state
// compatibility generation. It is part of the content address of every
// persisted snapshot artifact: a loader only accepts payloads written
// by the same generation, so stale artifacts from an older engine fall
// back to a fresh ELF build instead of feeding the executor micro-ops
// it no longer understands.
//
// Bump it whenever any of the following changes: the Snapshot or block
// layout serialized below, the uop.Uop field set or Kind numbering, the
// lowering/optimizer semantics (same guest bytes must produce the same
// uops for a cached block to be interchangeable with a fresh
// translation), or the guest-visible restore semantics.
//
// History: 2 added the absorbed-superblock section after the block
// section. 3 added the NoTier2 policy bit to the header; tier-2
// compiled traces themselves are never serialized — they are rebuilt
// per-VM from the persisted superblocks once those re-prove hot.
const EngineVersion uint32 = 3

// snapMagic brands a serialized snapshot payload.
const snapMagic = "VXSN"

// snapHeaderLen is the fixed prefix before the low image.
const snapHeaderLen = 92

// Flag and policy bit positions in the serialized header.
const (
	sfCF = 1 << iota
	sfZF
	sfSF
	sfOF
	sfPF
)

const (
	sbNoCache = 1 << iota
	sbNoSB
	sbNoFuse
	sbNoFlagElide
	sbNoT2
)

// instWireLen and uopWireLen are the fixed per-record sizes of the
// block section (see encodeInst/encodeUop).
const (
	argWireLen  = 14
	instWireLen = 8 + 3*argWireLen
	uopWireLen  = 36
)

// Serialize renders the snapshot — header, memory image, the
// translated block cache and the absorbed superblocks — into the
// self-contained binary payload the artifact store persists. Blocks and
// superblocks are written in address order, so the same snapshot state
// always serializes to the same bytes. Assembler-only symbol
// annotations cannot appear in decoded instructions, and a block
// carrying one is skipped defensively.
//
// A superblock's escape micro-ops point at instructions owned by its
// constituent base blocks; they are persisted as EIP references and
// re-linked against the decoded block section on load, so a superblock
// whose constituents were not all serialized is skipped.
func (s *Snapshot) Serialize() ([]byte, error) {
	// Freeze a view of the block cache; AbsorbBlocks may grow it
	// concurrently and the map must not be read outside the lock.
	s.mu.Lock()
	blocks := make([]*block, 0, len(s.blocks))
	addrs := make(map[*block]uint32, len(s.blocks))
	for addr, b := range s.blocks {
		blocks = append(blocks, b)
		addrs[b] = addr
	}
	sbs := make([]*block, 0, len(s.sbs))
	sbAddrs := make(map[*block]uint32, len(s.sbs))
	for addr, r := range s.sbs {
		sbs = append(sbs, r.b)
		sbAddrs[r.b] = addr
	}
	s.mu.Unlock()
	sort.Slice(blocks, func(i, j int) bool { return addrs[blocks[i]] < addrs[blocks[j]] })
	sort.Slice(sbs, func(i, j int) bool { return sbAddrs[sbs[i]] < sbAddrs[sbs[j]] })

	kept := blocks[:0]
	for _, b := range blocks {
		if serializableBlock(b) {
			kept = append(kept, b)
		}
	}
	blocks = kept

	// Superblock escape payloads re-link by instruction address; only
	// traces whose every payload EIP survives in the block section can
	// be reconstructed by the loader.
	eips := make(map[uint32]bool)
	for _, b := range blocks {
		for _, a := range b.addrs {
			eips[a] = true
		}
	}
	keptSBs := sbs[:0]
	for _, b := range sbs {
		if serializableSB(b, eips) {
			keptSBs = append(keptSBs, b)
		}
	}
	sbs = keptSBs

	size := snapHeaderLen + len(s.low) + len(s.high) + 4
	for _, b := range blocks {
		size += 20 + len(b.insts)*(instWireLen+4) + len(b.uops)*uopWireLen
	}
	for _, b := range sbs {
		size += 20 + len(b.uops)*uopWireLen
	}
	out := make([]byte, snapHeaderLen, size)

	copy(out[0:4], snapMagic)
	le := binary.LittleEndian
	le.PutUint32(out[4:], EngineVersion)
	le.PutUint32(out[8:], s.memSize)
	le.PutUint32(out[12:], s.brk)
	le.PutUint32(out[16:], s.roLimit)
	le.PutUint32(out[20:], s.stackBase)
	le.PutUint32(out[24:], s.eip)
	for i, r := range s.regs {
		le.PutUint32(out[28+4*i:], r)
	}
	out[60] = packBits(s.cf, sfCF) | packBits(s.zf, sfZF) | packBits(s.sf, sfSF) |
		packBits(s.of, sfOF) | packBits(s.pf, sfPF)
	out[61] = packBits(s.noCache, sbNoCache) | packBits(s.noSB, sbNoSB) |
		packBits(s.optCfg.NoFuse, sbNoFuse) | packBits(s.optCfg.NoFlagElide, sbNoFlagElide) |
		packBits(s.noT2, sbNoT2)
	le.PutUint64(out[64:], uint64(s.fuel))
	le.PutUint64(out[72:], uint64(s.wallBudget))
	le.PutUint32(out[80:], uint32(len(s.low)))
	le.PutUint32(out[84:], uint32(len(s.high)))
	le.PutUint32(out[88:], uint32(len(blocks)))

	out = append(out, s.low...)
	out = append(out, s.high...)
	for _, b := range blocks {
		out = appendBlock(out, addrs[b], b)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sbs)))
	for _, b := range sbs {
		out = appendSB(out, sbAddrs[b], b)
	}
	return out, nil
}

func packBits(b bool, bit byte) byte {
	if b {
		return bit
	}
	return 0
}

// serializableSB reports whether a superblock fragment may be
// persisted: every escape micro-op's payload instruction must be
// reachable by address in the serialized block section, or the loader
// could not re-link it.
func serializableSB(b *block, eips map[uint32]bool) bool {
	for i := range b.uops {
		if b.uops[i].Inst != nil && !eips[b.uops[i].EIP] {
			return false
		}
	}
	return true
}

// serializableBlock reports whether the fragment may be persisted: it
// must carry its decoded instructions (superblocks do not) and no
// assembler-only symbol annotations (Decode never produces them).
func serializableBlock(b *block) bool {
	if len(b.insts) == 0 {
		return false
	}
	for i := range b.insts {
		in := &b.insts[i]
		if in.Sym != "" || in.Dst.Sym != "" || in.Src.Sym != "" || in.Aux.Sym != "" {
			return false
		}
	}
	return true
}

func appendBlock(out []byte, addr uint32, b *block) []byte {
	var hdr [20]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], addr)
	le.PutUint32(hdr[4:], b.end)
	le.PutUint64(hdr[8:], uint64(b.cost))
	le.PutUint16(hdr[16:], uint16(len(b.insts)))
	le.PutUint16(hdr[18:], uint16(len(b.uops)))
	out = append(out, hdr[:]...)
	for i := range b.insts {
		out = appendInst(out, &b.insts[i])
	}
	for _, a := range b.addrs {
		out = le.AppendUint32(out, a)
	}
	for i := range b.uops {
		out = appendUop(out, &b.uops[i], b.insts)
	}
	return out
}

// appendSB writes one superblock record: a 20-byte header (entry
// address, trace end, fuel cost, micro-op count) followed by the
// micro-ops. Escape payloads are written as has-payload markers and
// re-linked by EIP on load; guard slot numbering is re-derived on load,
// so nothing per-VM is persisted.
func appendSB(out []byte, addr uint32, b *block) []byte {
	var hdr [20]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], addr)
	le.PutUint32(hdr[4:], b.end)
	le.PutUint64(hdr[8:], uint64(b.cost))
	le.PutUint32(hdr[16:], uint32(len(b.uops)))
	out = append(out, hdr[:]...)
	for i := range b.uops {
		out = appendUop(out, &b.uops[i], nil)
		// Overwrite the (always -1 against nil insts) payload index
		// with the has-payload marker the superblock decoder expects.
		marker := uint32(0)
		if b.uops[i].Inst != nil {
			marker = 1
		}
		le.PutUint32(out[len(out)-4:], marker)
	}
	return out
}

func appendArg(out []byte, a *x86.Arg) []byte {
	var w [argWireLen]byte
	w[0] = byte(a.Kind)
	w[1] = byte(a.Reg)
	w[2] = byte(a.Base)
	w[3] = byte(a.Index)
	w[4] = a.Scale
	w[5] = a.Size
	le := binary.LittleEndian
	le.PutUint32(w[6:], uint32(a.Disp))
	le.PutUint32(w[10:], uint32(a.Imm))
	return append(out, w[:]...)
}

func appendInst(out []byte, in *x86.Inst) []byte {
	var w [8]byte
	w[0] = byte(in.Op)
	w[1] = byte(in.CC)
	w[2] = packBits(in.Rep, 1)
	w[3] = in.Len
	binary.LittleEndian.PutUint32(w[4:], uint32(in.Rel))
	out = append(out, w[:]...)
	out = appendArg(out, &in.Dst)
	out = appendArg(out, &in.Src)
	return appendArg(out, &in.Aux)
}

func appendUop(out []byte, u *uop.Uop, insts []x86.Inst) []byte {
	var w [uopWireLen]byte
	w[0] = byte(u.Kind)
	w[1] = u.Sub
	w[2] = u.Dst
	w[3] = u.Src
	w[4] = u.Dsh
	w[5] = u.Ssh
	w[6] = u.Base
	w[7] = u.Idx
	w[8] = u.Scale
	w[9] = u.Aux
	w[10] = u.Cost
	// w[11] reserved
	le := binary.LittleEndian
	le.PutUint32(w[12:], u.Imm)
	le.PutUint32(w[16:], u.Disp)
	le.PutUint32(w[20:], u.EIP)
	le.PutUint32(w[24:], u.Next)
	le.PutUint32(w[28:], u.Target)
	// The generic-escape payload pointer aims into the block's own
	// insts slice; persist it as an index and re-link on decode.
	idx := int32(-1)
	if u.Inst != nil {
		for i := range insts {
			if u.Inst == &insts[i] {
				idx = int32(i)
				break
			}
		}
	}
	le.PutUint32(w[32:], uint32(idx))
	return append(out, w[:]...)
}

// decCursor is a bounds-checked reader over a serialized payload.
// Every read either succeeds or flips err; nothing ever panics on a
// truncated or corrupt payload.
type decCursor struct {
	data []byte
	off  int
	err  error
}

func (c *decCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("vm: snapshot decode: "+format, args...)
	}
}

func (c *decCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.data) {
		c.fail("truncated at offset %d (+%d of %d)", c.off, n, len(c.data))
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *decCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *decCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Deserialize reconstructs a Snapshot from a payload produced by
// Serialize. The memory-image sections are aliased, not copied: the
// returned snapshot's restore source points directly into data, so a
// memory-mapped payload lets every process serving the same decoder
// share one page-cache copy of the pristine image. The caller must keep
// data alive and immutable for the lifetime of the snapshot (the
// artifact store retains its mappings; heap payloads are pinned by the
// alias itself).
//
// Decoding is defensive — truncation, bad magic, a foreign engine
// version, or out-of-range structural fields all return an error — but
// it deliberately does not re-verify the semantic content of cached
// micro-ops against the image: the store's whole-artifact checksum is
// the integrity boundary, and on any doubt the caller rebuilds from the
// decoder ELF instead.
func Deserialize(data []byte) (*Snapshot, error) {
	c := &decCursor{data: data}
	if magic := c.take(4); c.err != nil || string(magic) != snapMagic {
		return nil, fmt.Errorf("vm: snapshot decode: bad magic")
	}
	if v := c.u32(); c.err == nil && v != EngineVersion {
		return nil, fmt.Errorf("vm: snapshot decode: engine version %d, want %d", v, EngineVersion)
	}
	s := &Snapshot{}
	s.memSize = c.u32()
	s.brk = c.u32()
	s.roLimit = c.u32()
	s.stackBase = c.u32()
	s.eip = c.u32()
	for i := range s.regs {
		s.regs[i] = c.u32()
	}
	bits := c.take(4) // flags, policy bits, 2 reserved
	if c.err != nil {
		return nil, c.err
	}
	s.cf, s.zf, s.sf, s.of, s.pf = bits[0]&sfCF != 0, bits[0]&sfZF != 0,
		bits[0]&sfSF != 0, bits[0]&sfOF != 0, bits[0]&sfPF != 0
	s.noCache = bits[1]&sbNoCache != 0
	s.noSB = bits[1]&sbNoSB != 0
	s.noT2 = bits[1]&sbNoT2 != 0
	s.optCfg = uop.OptConfig{NoFuse: bits[1]&sbNoFuse != 0, NoFlagElide: bits[1]&sbNoFlagElide != 0}
	s.fuel = int64(c.u64())
	s.wallBudget = time.Duration(c.u64())
	lowLen := c.u32()
	highLen := c.u32()
	nBlocks := c.u32()
	if c.err != nil {
		return nil, c.err
	}
	if s.memSize == 0 || s.memSize > MaxMemSize || s.memSize%PageSize != 0 ||
		s.brk > s.memSize || s.roLimit > s.brk || s.stackBase > s.memSize ||
		lowLen != s.brk || highLen != s.memSize-s.stackBase {
		return nil, fmt.Errorf("vm: snapshot decode: inconsistent layout (mem=%d brk=%d ro=%d stack=%d low=%d high=%d)",
			s.memSize, s.brk, s.roLimit, s.stackBase, lowLen, highLen)
	}
	s.low = c.take(int(lowLen))
	s.high = c.take(int(highLen))
	if c.err != nil {
		return nil, c.err
	}

	s.blocks = make(map[uint32]*block, nBlocks)
	for i := uint32(0); i < nBlocks; i++ {
		addr, b, err := decodeBlock(c, s)
		if err != nil {
			return nil, err
		}
		s.blocks[addr] = b
	}

	nSBs := c.u32()
	if c.err != nil {
		return nil, c.err
	}
	s.sbs = make(map[uint32]*sbRecord, nSBs)
	if nSBs > 0 {
		// Escape payloads re-link by instruction address against the
		// block section just decoded.
		eips := make(map[uint32]*x86.Inst)
		for _, b := range s.blocks {
			for i, a := range b.addrs {
				eips[a] = &b.insts[i]
			}
		}
		for i := uint32(0); i < nSBs; i++ {
			addr, r, err := decodeSB(c, s, eips)
			if err != nil {
				return nil, err
			}
			s.sbs[addr] = r
		}
	}
	if c.off != len(c.data) {
		return nil, fmt.Errorf("vm: snapshot decode: %d trailing bytes", len(c.data)-c.off)
	}
	return s, nil
}

func decodeBlock(c *decCursor, s *Snapshot) (uint32, *block, error) {
	addr := c.u32()
	b := &block{end: c.u32(), cost: int64(c.u64())}
	counts := c.take(4)
	if c.err != nil {
		return 0, nil, c.err
	}
	le := binary.LittleEndian
	nInsts := int(le.Uint16(counts[0:]))
	nUops := int(le.Uint16(counts[2:]))
	if nInsts == 0 || nInsts > maxBlockLen || nUops == 0 || nUops > nInsts {
		return 0, nil, fmt.Errorf("vm: snapshot decode: block %#x has %d insts / %d uops", addr, nInsts, nUops)
	}
	b.insts = make([]x86.Inst, nInsts)
	for i := range b.insts {
		decodeInst(c, &b.insts[i])
	}
	b.addrs = make([]uint32, nInsts)
	for i := range b.addrs {
		b.addrs[i] = c.u32()
	}
	b.uops = make([]uop.Uop, nUops)
	for i := range b.uops {
		if err := decodeUop(c, &b.uops[i], b.insts); err != nil {
			return 0, nil, err
		}
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	// The executor only chains/absorbs blocks below roLimit, and the
	// snapshot guarantees those bytes are pristine; a block outside the
	// window could never have been absorbed by this engine.
	if addr < PageSize || b.end < addr || b.end > s.roLimit {
		return 0, nil, fmt.Errorf("vm: snapshot decode: block [%#x,%#x) outside the read-only window", addr, b.end)
	}
	return addr, b, nil
}

// decodeSB reconstructs one absorbed superblock. Structural defenses
// mirror decodeBlock's: bounded micro-op count, an entry address that
// must name a decoded base block, and the whole trace confined to the
// read-only window. Guard chain slots are re-numbered from scratch with
// the same scan formSuperblock uses, so the wire's Aux bytes for guards
// are never trusted as array indices.
func decodeSB(c *decCursor, s *Snapshot, eips map[uint32]*x86.Inst) (uint32, *sbRecord, error) {
	addr := c.u32()
	b := &block{end: c.u32(), cost: int64(c.u64())}
	nUops := int(c.u32())
	if c.err != nil {
		return 0, nil, c.err
	}
	// Growth appends the final block's lowering after the size check
	// passes, so a legitimate trace can overshoot sbMaxUops by at most
	// one block plus the synthetic tail jump.
	if nUops <= 0 || nUops > sbMaxUops+maxBlockLen+1 || b.cost < 0 {
		return 0, nil, fmt.Errorf("vm: snapshot decode: superblock %#x has %d uops, cost %d", addr, nUops, b.cost)
	}
	b.uops = make([]uop.Uop, nUops)
	for i := range b.uops {
		if err := decodeSBUop(c, &b.uops[i], eips); err != nil {
			return 0, nil, err
		}
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	guards, rets := sbNumberSlots(b.uops)
	if _, ok := s.blocks[addr]; !ok {
		return 0, nil, fmt.Errorf("vm: snapshot decode: superblock %#x has no entry block", addr)
	}
	if !sbInRO(b, s.roLimit) {
		return 0, nil, fmt.Errorf("vm: snapshot decode: superblock %#x leaves the read-only window", addr)
	}
	return addr, &sbRecord{b: b, guards: guards, rets: rets}, nil
}

// decodeSBUop decodes one superblock micro-op: the layout of decodeUop
// with the payload word carrying a has-payload marker resolved through
// the block section's instruction addresses, and guard Aux bytes left
// for renumbering rather than range-checked as registers.
func decodeSBUop(c *decCursor, u *uop.Uop, eips map[uint32]*x86.Inst) error {
	w := c.take(uopWireLen)
	if w == nil {
		return c.err
	}
	u.Kind = uop.Kind(w[0])
	u.Sub = w[1]
	u.Dst = w[2]
	u.Src = w[3]
	u.Dsh = w[4]
	u.Ssh = w[5]
	u.Base = w[6]
	u.Idx = w[7]
	u.Scale = w[8]
	u.Aux = w[9]
	u.Cost = w[10]
	le := binary.LittleEndian
	u.Imm = le.Uint32(w[12:])
	u.Disp = le.Uint32(w[16:])
	u.EIP = le.Uint32(w[20:])
	u.Next = le.Uint32(w[24:])
	u.Target = le.Uint32(w[28:])

	if u.Kind > uop.KindGeneric {
		return fmt.Errorf("vm: snapshot decode: unknown uop kind %d at eip %#x", u.Kind, u.EIP)
	}
	if u.Dst > uop.RegZero || u.Src > uop.RegZero || u.Base > uop.RegZero ||
		u.Idx > uop.RegZero {
		return fmt.Errorf("vm: snapshot decode: register slot out of range at eip %#x", u.EIP)
	}
	if !sbGuardKind(u.Kind) && u.Kind != uop.KindRetGuard && u.Aux > uop.RegZero {
		return fmt.Errorf("vm: snapshot decode: register slot out of range at eip %#x", u.EIP)
	}
	switch le.Uint32(w[32:]) {
	case 1:
		in, ok := eips[u.EIP]
		if !ok {
			return fmt.Errorf("vm: snapshot decode: superblock payload at eip %#x not in block section", u.EIP)
		}
		u.Inst = in
	case 0:
		if u.Kind == uop.KindString || u.Kind == uop.KindGeneric {
			return fmt.Errorf("vm: snapshot decode: escape uop without payload at eip %#x", u.EIP)
		}
	default:
		return fmt.Errorf("vm: snapshot decode: bad superblock payload marker at eip %#x", u.EIP)
	}
	return nil
}

func decodeArg(c *decCursor, a *x86.Arg) {
	w := c.take(argWireLen)
	if w == nil {
		return
	}
	a.Kind = x86.ArgKind(w[0])
	a.Reg = x86.Reg(w[1])
	a.Base = x86.Reg(w[2])
	a.Index = x86.Reg(w[3])
	a.Scale = w[4]
	a.Size = w[5]
	le := binary.LittleEndian
	a.Disp = int32(le.Uint32(w[6:]))
	a.Imm = int32(le.Uint32(w[10:]))
}

func decodeInst(c *decCursor, in *x86.Inst) {
	w := c.take(8)
	if w == nil {
		return
	}
	in.Op = x86.Op(w[0])
	in.CC = x86.CC(w[1])
	in.Rep = w[2]&1 != 0
	in.Len = w[3]
	in.Rel = int32(binary.LittleEndian.Uint32(w[4:]))
	decodeArg(c, &in.Dst)
	decodeArg(c, &in.Src)
	decodeArg(c, &in.Aux)
}

func decodeUop(c *decCursor, u *uop.Uop, insts []x86.Inst) error {
	w := c.take(uopWireLen)
	if w == nil {
		return c.err
	}
	u.Kind = uop.Kind(w[0])
	u.Sub = w[1]
	u.Dst = w[2]
	u.Src = w[3]
	u.Dsh = w[4]
	u.Ssh = w[5]
	u.Base = w[6]
	u.Idx = w[7]
	u.Scale = w[8]
	u.Aux = w[9]
	u.Cost = w[10]
	le := binary.LittleEndian
	u.Imm = le.Uint32(w[12:])
	u.Disp = le.Uint32(w[16:])
	u.EIP = le.Uint32(w[20:])
	u.Next = le.Uint32(w[24:])
	u.Target = le.Uint32(w[28:])

	// Structural validation: the executor indexes its jump table by
	// Kind and the 9-slot register file (RegZero included) by the
	// register fields, so out-of-range values here would be memory
	// corruption, not just a wrong answer.
	if u.Kind > uop.KindGeneric {
		return fmt.Errorf("vm: snapshot decode: unknown uop kind %d at eip %#x", u.Kind, u.EIP)
	}
	if u.Dst > uop.RegZero || u.Src > uop.RegZero || u.Base > uop.RegZero ||
		u.Idx > uop.RegZero || u.Aux > uop.RegZero {
		return fmt.Errorf("vm: snapshot decode: register slot out of range at eip %#x", u.EIP)
	}
	idx := int32(le.Uint32(w[32:]))
	switch {
	case idx >= 0 && int(idx) < len(insts):
		u.Inst = &insts[idx]
	case idx == -1:
		if u.Kind == uop.KindString || u.Kind == uop.KindGeneric {
			return fmt.Errorf("vm: snapshot decode: escape uop without payload at eip %#x", u.EIP)
		}
	default:
		return fmt.Errorf("vm: snapshot decode: uop payload index %d out of range", idx)
	}
	return nil
}
