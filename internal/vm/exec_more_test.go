package vm

import (
	"testing"

	"vxa/internal/x86"
)

// TestMovzxMovsx covers the widening loads from memory and registers.
func TestMovzxMovsx(t *testing.T) {
	v := newBare(t)
	addr := uint32(PageSize + 0x100)
	v.mem[addr] = 0x80
	v.mem[addr+1] = 0xFF
	v.regs[x86.EBX] = addr

	cases := []struct {
		inst x86.Inst
		want uint32
	}{
		{x86.Inst{Op: x86.MOVZX, Dst: x86.R(x86.EAX), Src: x86.M8(x86.EBX, 0)}, 0x80},
		{x86.Inst{Op: x86.MOVSX, Dst: x86.R(x86.EAX), Src: x86.M8(x86.EBX, 0)}, 0xFFFFFF80},
		{x86.Inst{Op: x86.MOVZX, Dst: x86.R(x86.EAX), Src: x86.M16(x86.EBX, 0)}, 0xFF80},
		{x86.Inst{Op: x86.MOVSX, Dst: x86.R(x86.EAX), Src: x86.M16(x86.EBX, 0)}, 0xFFFFFF80},
	}
	for _, c := range cases {
		v.regs[x86.EAX] = 0xDEADBEEF
		if err := step(t, v, c.inst); err != nil {
			t.Fatal(err)
		}
		if v.regs[x86.EAX] != c.want {
			t.Errorf("%v: eax = %#x, want %#x", c.inst, v.regs[x86.EAX], c.want)
		}
	}
}

func TestXchgMem(t *testing.T) {
	v := newBare(t)
	addr := uint32(PageSize + 0x40)
	v.store(addr, 4, 0x1111)
	v.regs[x86.EBX] = addr
	v.regs[x86.ECX] = 0x2222
	if err := step(t, v, x86.Inst{Op: x86.XCHG, Dst: x86.M(x86.EBX, 0), Src: x86.R(x86.ECX)}); err != nil {
		t.Fatal(err)
	}
	got, _ := v.load(addr, 4)
	if got != 0x2222 || v.regs[x86.ECX] != 0x1111 {
		t.Fatalf("xchg: mem=%#x ecx=%#x", got, v.regs[x86.ECX])
	}
}

func TestSetccAllConditions(t *testing.T) {
	v := newBare(t)
	// After cmp 3, 5 (signed less, unsigned less, not equal):
	v.regs[x86.EAX], v.regs[x86.EBX] = 3, 5
	if err := step(t, v, x86.Inst{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
		t.Fatal(err)
	}
	want := map[x86.CC]uint32{
		x86.CCE: 0, x86.CCNE: 1, x86.CCL: 1, x86.CCGE: 0,
		x86.CCB: 1, x86.CCAE: 0, x86.CCLE: 1, x86.CCG: 0,
		x86.CCBE: 1, x86.CCA: 0, x86.CCS: 1, x86.CCNS: 0,
	}
	for cc, expect := range want {
		cf, zf, sf, of := v.cf, v.zf, v.sf, v.of
		v.regs[x86.EDX] = 0xFFFFFFFF
		if err := step(t, v, x86.Inst{Op: x86.SETCC, CC: cc, Dst: x86.R8(x86.EDX)}); err != nil {
			t.Fatal(err)
		}
		if v.regs[x86.EDX]&0xFF != expect {
			t.Errorf("set%v = %d, want %d", cc, v.regs[x86.EDX]&0xFF, expect)
		}
		if v.regs[x86.EDX]>>8 != 0xFFFFFF {
			t.Errorf("set%v clobbered upper bytes", cc)
		}
		v.cf, v.zf, v.sf, v.of = cf, zf, sf, of
	}
}

func TestPushImmAndMem(t *testing.T) {
	v := newBare(t)
	sp0 := v.regs[x86.ESP]
	if err := step(t, v, x86.Inst{Op: x86.PUSH, Dst: x86.I(-7)}); err != nil {
		t.Fatal(err)
	}
	got, _ := v.load(v.regs[x86.ESP], 4)
	if int32(got) != -7 || v.regs[x86.ESP] != sp0-4 {
		t.Fatalf("push imm: [esp]=%d esp=%#x", int32(got), v.regs[x86.ESP])
	}
	// push [mem]
	addr := uint32(PageSize + 8)
	v.store(addr, 4, 0xCAFE)
	v.regs[x86.EBX] = addr
	if err := step(t, v, x86.Inst{Op: x86.PUSH, Dst: x86.M(x86.EBX, 0)}); err != nil {
		t.Fatal(err)
	}
	got, _ = v.load(v.regs[x86.ESP], 4)
	if got != 0xCAFE {
		t.Fatalf("push mem: %#x", got)
	}
}

func TestStosdAndMovsd(t *testing.T) {
	v := newBare(t)
	dst := uint32(PageSize + 0x200)
	v.regs[x86.EDI] = dst
	v.regs[x86.EAX] = 0x11223344
	v.regs[x86.ECX] = 4
	if err := step(t, v, x86.Inst{Op: x86.STOSD, Rep: true}); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		got, _ := v.load(dst+i*4, 4)
		if got != 0x11223344 {
			t.Fatalf("stosd word %d = %#x", i, got)
		}
	}
	if v.regs[x86.EDI] != dst+16 || v.regs[x86.ECX] != 0 {
		t.Fatalf("stosd regs: edi=%#x ecx=%d", v.regs[x86.EDI], v.regs[x86.ECX])
	}
	// movsd copies dwords.
	v.regs[x86.ESI] = dst
	v.regs[x86.EDI] = dst + 64
	v.regs[x86.ECX] = 4
	if err := step(t, v, x86.Inst{Op: x86.MOVSD, Rep: true}); err != nil {
		t.Fatal(err)
	}
	got, _ := v.load(dst+64+12, 4)
	if got != 0x11223344 {
		t.Fatalf("movsd tail = %#x", got)
	}
}

// TestRepZeroCount: rep with ECX=0 is a no-op that must not fault even
// with bad pointers.
func TestRepZeroCount(t *testing.T) {
	v := newBare(t)
	v.regs[x86.EDI] = 0xFFFFFFF0 // would fault if touched
	v.regs[x86.ESI] = 0xFFFFFFF0
	v.regs[x86.ECX] = 0
	if err := step(t, v, x86.Inst{Op: x86.MOVSB, Rep: true}); err != nil {
		t.Fatalf("rep movsb with ecx=0 faulted: %v", err)
	}
	if err := step(t, v, x86.Inst{Op: x86.STOSB, Rep: true}); err != nil {
		t.Fatalf("rep stosb with ecx=0 faulted: %v", err)
	}
}

// TestRepFaultsAtomically: a rep whose range crosses the sandbox boundary
// traps without partial effects on registers.
func TestRepFaultsAtomically(t *testing.T) {
	v := newBare(t)
	v.regs[x86.EDI] = v.brk - 4 // 4 valid bytes, then out of bounds
	v.regs[x86.ECX] = 100
	v.regs[x86.EAX] = 0xAA
	err := step(t, v, x86.Inst{Op: x86.STOSB, Rep: true})
	if k, ok := trapKind(err); !ok || k != TrapMemory {
		t.Fatalf("err = %v, want memory trap", err)
	}
	if v.regs[x86.ECX] != 100 {
		t.Fatalf("partial rep visible: ecx = %d", v.regs[x86.ECX])
	}
}

// TestIndirectCallThroughTable exercises JMPM/CALLM with a jump table in
// guest memory, the pattern behind switch statements.
func TestIndirectCallThroughTable(t *testing.T) {
	v := newBare(t)
	// Build: table at data page holding the address of "target".
	// target: mov ebx, 99; exit.
	code := uint32(PageSize)
	asmAt := func(addr uint32, insts ...x86.Inst) uint32 {
		for _, in := range insts {
			b, err := x86.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			copy(v.mem[addr:], b)
			addr += uint32(len(b))
		}
		return addr
	}
	table := uint32(PageSize + 0x800)
	// start: mov eax, [table]; jmp eax
	asmAt(code,
		x86.Inst{Op: x86.MOV, Dst: x86.R(x86.EAX), Src: x86.MAbs("", int32(table), 4)},
		x86.Inst{Op: x86.JMPM, Dst: x86.R(x86.EAX)},
	)
	target := uint32(PageSize + 0x400)
	asmAt(target,
		x86.Inst{Op: x86.MOV, Dst: x86.R(x86.EAX), Src: x86.I(SysExit)},
		x86.Inst{Op: x86.MOV, Dst: x86.R(x86.EBX), Src: x86.I(99)},
		x86.Inst{Op: x86.INT, Dst: x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1}},
	)
	v.store(table, 4, target)
	v.SetEntry(code)
	st, err := v.Run()
	if err != nil || st != StatusExit || v.ExitCode() != 99 {
		t.Fatalf("st=%v err=%v code=%d", st, err, v.ExitCode())
	}
}
