package vm

import (
	"math/rand"
	"testing"

	"vxa/internal/x86"
)

// newBare returns a VM suitable for single-instruction white-box tests.
func newBare(t *testing.T) *VM {
	t.Helper()
	v, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Give the tests a writable scratch region.
	if err := v.MapSegment(PageSize, make([]byte, PageSize), PageSize, false); err != nil {
		t.Fatal(err)
	}
	return v
}

// step executes a single constructed instruction.
func step(t *testing.T, v *VM, inst x86.Inst) error {
	t.Helper()
	b, err := x86.Encode(inst)
	if err != nil {
		t.Fatalf("encode %v: %v", inst, err)
	}
	inst.Len = uint8(len(b))
	return v.exec(&inst, 2*PageSize-32)
}

// flagRef is an independently computed reference for the arithmetic flags.
type flagRef struct {
	res            uint32
	cf, zf, sf, of bool
}

func refAdd(a, b uint32, carry uint32) flagRef {
	r := a + b + carry
	return flagRef{
		res: r,
		cf:  uint64(a)+uint64(b)+uint64(carry) > 0xFFFFFFFF,
		zf:  r == 0,
		sf:  int32(r) < 0,
		of:  int64(int32(a))+int64(int32(b))+int64(carry) != int64(int32(r)),
	}
}

func refSub(a, b uint32, borrow uint32) flagRef {
	r := a - b - borrow
	return flagRef{
		res: r,
		cf:  uint64(a) < uint64(b)+uint64(borrow),
		zf:  r == 0,
		sf:  int32(r) < 0,
		of:  int64(int32(a))-int64(int32(b))-int64(borrow) != int64(int32(r)),
	}
}

func refAdd8(a, b uint8, carry uint8) flagRef {
	r := a + b + carry
	return flagRef{
		res: uint32(r),
		cf:  uint32(a)+uint32(b)+uint32(carry) > 0xFF,
		zf:  r == 0,
		sf:  int8(r) < 0,
		of:  int16(int8(a))+int16(int8(b))+int16(carry) != int16(int8(r)),
	}
}

func refSub8(a, b uint8, borrow uint8) flagRef {
	r := a - b - borrow
	return flagRef{
		res: uint32(r),
		cf:  uint32(a) < uint32(b)+uint32(borrow),
		zf:  r == 0,
		sf:  int8(r) < 0,
		of:  int16(int8(a))-int16(int8(b))-int16(borrow) != int16(int8(r)),
	}
}

func (v *VM) checkFlags(t *testing.T, name string, want flagRef, gotRes uint32) {
	t.Helper()
	if gotRes != want.res {
		t.Fatalf("%s: result = %#x, want %#x", name, gotRes, want.res)
	}
	if v.cf != want.cf || v.zf != want.zf || v.sf != want.sf || v.of != want.of {
		t.Fatalf("%s: flags cf=%v zf=%v sf=%v of=%v, want cf=%v zf=%v sf=%v of=%v",
			name, v.cf, v.zf, v.sf, v.of, want.cf, want.zf, want.sf, want.of)
	}
}

// TestALUFlags32 is a differential test of 32-bit arithmetic flag
// semantics against an independently computed reference.
func TestALUFlags32(t *testing.T) {
	v := newBare(t)
	r := rand.New(rand.NewSource(7))
	interesting := []uint32{0, 1, 2, 0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFF, 0xFFFFFFFE}
	vals := append([]uint32{}, interesting...)
	for i := 0; i < 200; i++ {
		vals = append(vals, r.Uint32())
	}
	for _, a := range vals {
		for _, b := range interesting {
			// ADD
			v.regs[x86.EAX], v.regs[x86.EBX] = a, b
			if err := step(t, v, x86.Inst{Op: x86.ADD, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
				t.Fatal(err)
			}
			v.checkFlags(t, "add", refAdd(a, b, 0), v.regs[x86.EAX])

			// SUB
			v.regs[x86.EAX], v.regs[x86.EBX] = a, b
			if err := step(t, v, x86.Inst{Op: x86.SUB, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
				t.Fatal(err)
			}
			v.checkFlags(t, "sub", refSub(a, b, 0), v.regs[x86.EAX])

			// CMP leaves the destination alone but sets SUB flags.
			v.regs[x86.EAX], v.regs[x86.EBX] = a, b
			if err := step(t, v, x86.Inst{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
				t.Fatal(err)
			}
			want := refSub(a, b, 0)
			want.res = a
			v.checkFlags(t, "cmp", want, v.regs[x86.EAX])

			// ADC/SBB with both carry states.
			for _, c := range []bool{false, true} {
				cu := uint32(0)
				if c {
					cu = 1
				}
				v.regs[x86.EAX], v.regs[x86.EBX] = a, b
				v.cf = c
				if err := step(t, v, x86.Inst{Op: x86.ADC, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
					t.Fatal(err)
				}
				v.checkFlags(t, "adc", refAdd(a, b, cu), v.regs[x86.EAX])

				v.regs[x86.EAX], v.regs[x86.EBX] = a, b
				v.cf = c
				if err := step(t, v, x86.Inst{Op: x86.SBB, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
					t.Fatal(err)
				}
				v.checkFlags(t, "sbb", refSub(a, b, cu), v.regs[x86.EAX])
			}

			// Logic ops clear CF/OF.
			v.regs[x86.EAX], v.regs[x86.EBX] = a, b
			if err := step(t, v, x86.Inst{Op: x86.AND, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
				t.Fatal(err)
			}
			res := a & b
			v.checkFlags(t, "and", flagRef{res: res, zf: res == 0, sf: int32(res) < 0}, v.regs[x86.EAX])
		}
	}
}

// TestALUFlags8 checks that byte-width operations compute flags at 8 bits.
func TestALUFlags8(t *testing.T) {
	v := newBare(t)
	for a := 0; a < 256; a += 3 {
		for b := 0; b < 256; b += 7 {
			v.regs[x86.EAX] = 0xAAAA_0000 | uint32(a)
			v.regs[x86.EBX] = uint32(b)
			if err := step(t, v, x86.Inst{Op: x86.ADD, Dst: x86.R8(x86.EAX), Src: x86.R8(x86.EBX)}); err != nil {
				t.Fatal(err)
			}
			want := refAdd8(uint8(a), uint8(b), 0)
			v.checkFlags(t, "add8", want, v.regs[x86.EAX]&0xFF)
			if v.regs[x86.EAX]>>16 != 0xAAAA {
				t.Fatalf("add8 clobbered the upper bits: %#x", v.regs[x86.EAX])
			}

			v.regs[x86.EAX] = uint32(a)
			v.regs[x86.EBX] = uint32(b)
			if err := step(t, v, x86.Inst{Op: x86.SUB, Dst: x86.R8(x86.EAX), Src: x86.R8(x86.EBX)}); err != nil {
				t.Fatal(err)
			}
			v.checkFlags(t, "sub8", refSub8(uint8(a), uint8(b), 0), v.regs[x86.EAX]&0xFF)
		}
	}
}

// TestHighByteRegisters checks the AH/CH/DH/BH views.
func TestHighByteRegisters(t *testing.T) {
	v := newBare(t)
	v.regs[x86.EAX] = 0x11223344
	// mov ah, 0x99 — encoded as register 4 at byte width.
	if err := step(t, v, x86.Inst{Op: x86.MOV,
		Dst: x86.Arg{Kind: x86.KindReg, Reg: 4, Size: 1},
		Src: x86.Arg{Kind: x86.KindImm, Imm: int32(int8(-0x67)), Size: 1}}); err != nil {
		t.Fatal(err)
	}
	if v.regs[x86.EAX] != 0x11229944 {
		t.Fatalf("eax = %#x, want 0x11229944", v.regs[x86.EAX])
	}
	// Read back AH.
	v.regs[x86.EBX] = 0
	if err := step(t, v, x86.Inst{Op: x86.MOV,
		Dst: x86.Arg{Kind: x86.KindReg, Reg: x86.EBX, Size: 1},
		Src: x86.Arg{Kind: x86.KindReg, Reg: 4, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	if v.regs[x86.EBX]&0xFF != 0x99 {
		t.Fatalf("bl = %#x, want 0x99", v.regs[x86.EBX]&0xFF)
	}
}

// TestShifts checks shift results and the CF they leave behind.
func TestShifts(t *testing.T) {
	v := newBare(t)
	cases := []struct {
		op      x86.Op
		val     uint32
		count   int32
		want    uint32
		wantCF  bool
		checkCF bool
	}{
		{x86.SHL, 1, 4, 16, false, true},
		{x86.SHL, 0x80000000, 1, 0, true, true},
		{x86.SHL, 0xC0000000, 1, 0x80000000, true, true},
		{x86.SHR, 16, 4, 1, false, true},
		{x86.SHR, 17, 1, 8, true, true},
		{x86.SHR, 0x80000000, 31, 1, false, true},
		{x86.SAR, 0x80000000, 31, 0xFFFFFFFF, false, true},
		{x86.SAR, 0xFFFFFFFF, 1, 0xFFFFFFFF, true, true},
		{x86.SAR, 4, 1, 2, false, true},
		{x86.ROL, 0x80000001, 1, 0x00000003, true, true},
		{x86.ROR, 0x00000001, 1, 0x80000000, true, true},
		{x86.ROL, 0x12345678, 8, 0x34567812, false, false},
	}
	for _, c := range cases {
		v.regs[x86.EAX] = c.val
		if err := step(t, v, x86.Inst{Op: c.op, Dst: x86.R(x86.EAX),
			Src: x86.Arg{Kind: x86.KindImm, Imm: c.count, Size: 1}}); err != nil {
			t.Fatal(err)
		}
		if v.regs[x86.EAX] != c.want {
			t.Errorf("%v %#x,%d = %#x, want %#x", c.op, c.val, c.count, v.regs[x86.EAX], c.want)
		}
		if c.checkCF && v.cf != c.wantCF {
			t.Errorf("%v %#x,%d: cf=%v, want %v", c.op, c.val, c.count, v.cf, c.wantCF)
		}
	}

	// Shift by zero must leave flags untouched.
	v.regs[x86.EAX] = 0xFF
	v.cf, v.zf, v.sf, v.of = true, true, true, true
	v.regs[x86.ECX] = 32 // CL & 31 == 0
	if err := step(t, v, x86.Inst{Op: x86.SHL, Dst: x86.R(x86.EAX), Src: x86.R8(x86.ECX)}); err != nil {
		t.Fatal(err)
	}
	if !v.cf || !v.zf || !v.sf || !v.of || v.regs[x86.EAX] != 0xFF {
		t.Fatal("shift by 0 must be a no-op on value and flags")
	}
}

// TestMulDiv checks the widening multiply and divide family.
func TestMulDiv(t *testing.T) {
	v := newBare(t)

	v.regs[x86.EAX] = 0xFFFFFFFF
	v.regs[x86.EBX] = 2
	if err := step(t, v, x86.Inst{Op: x86.MUL1, Dst: x86.R(x86.EBX)}); err != nil {
		t.Fatal(err)
	}
	if v.regs[x86.EDX] != 1 || v.regs[x86.EAX] != 0xFFFFFFFE {
		t.Fatalf("mul: edx:eax = %#x:%#x", v.regs[x86.EDX], v.regs[x86.EAX])
	}
	if !v.cf || !v.of {
		t.Fatal("mul with significant high half must set CF/OF")
	}

	v.regs[x86.EAX] = u32(-6)
	if err := step(t, v, x86.Inst{Op: x86.CDQ}); err != nil {
		t.Fatal(err)
	}
	if v.regs[x86.EDX] != 0xFFFFFFFF {
		t.Fatalf("cdq: edx = %#x", v.regs[x86.EDX])
	}
	v.regs[x86.EBX] = uint32(int32(4))
	if err := step(t, v, x86.Inst{Op: x86.IDIV, Dst: x86.R(x86.EBX)}); err != nil {
		t.Fatal(err)
	}
	if int32(v.regs[x86.EAX]) != -1 || int32(v.regs[x86.EDX]) != -2 {
		t.Fatalf("idiv -6/4: q=%d r=%d, want -1 rem -2", int32(v.regs[x86.EAX]), int32(v.regs[x86.EDX]))
	}

	// Divide by zero traps.
	v.regs[x86.EBX] = 0
	err := step(t, v, x86.Inst{Op: x86.DIV, Dst: x86.R(x86.EBX)})
	if tr, ok := err.(*Trap); !ok || tr.Kind != TrapDivide {
		t.Fatalf("div by zero: %v, want divide trap", err)
	}

	// Quotient overflow traps (0x80000000:0 / 1 does not fit).
	v.regs[x86.EDX], v.regs[x86.EAX] = 0x80000000, 0
	v.regs[x86.EBX] = 1
	err = step(t, v, x86.Inst{Op: x86.DIV, Dst: x86.R(x86.EBX)})
	if tr, ok := err.(*Trap); !ok || tr.Kind != TrapDivide {
		t.Fatalf("div overflow: %v, want divide trap", err)
	}

	// IMUL 3-operand.
	v.regs[x86.EBX] = u32(-3)
	if err := step(t, v, x86.Inst{Op: x86.IMUL, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX), Aux: x86.I(7)}); err != nil {
		t.Fatal(err)
	}
	if int32(v.regs[x86.EAX]) != -21 {
		t.Fatalf("imul -3*7 = %d", int32(v.regs[x86.EAX]))
	}
	if v.cf || v.of {
		t.Fatal("imul without overflow must clear CF/OF")
	}
}

// TestConditionCodes exercises every Jcc predicate against CMP results.
func TestConditionCodes(t *testing.T) {
	v := newBare(t)
	type tc struct {
		a, b uint32
		cc   x86.CC
		want bool
	}
	cases := []tc{
		{5, 5, x86.CCE, true}, {5, 4, x86.CCE, false},
		{5, 4, x86.CCNE, true},
		{3, 5, x86.CCB, true}, {5, 3, x86.CCB, false},
		{5, 3, x86.CCA, true}, {3, 5, x86.CCA, false}, {5, 5, x86.CCA, false},
		{5, 5, x86.CCAE, true}, {5, 5, x86.CCBE, true},
		{u32(-1), 1, x86.CCL, true},
		{1, u32(-1), x86.CCG, true},
		{u32(-1), 1, x86.CCB, false}, // unsigned: 0xFFFFFFFF > 1
		{5, 5, x86.CCGE, true}, {5, 5, x86.CCLE, true},
		{u32(-5), u32(-3), x86.CCL, true},
		{0x80000000, 1, x86.CCL, true}, // overflow case: SF != OF
		{1, 2, x86.CCS, true}, {2, 1, x86.CCS, false},
	}
	for _, c := range cases {
		v.regs[x86.EAX], v.regs[x86.EBX] = c.a, c.b
		if err := step(t, v, x86.Inst{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.EBX)}); err != nil {
			t.Fatal(err)
		}
		if got := v.cond(c.cc); got != c.want {
			t.Errorf("cmp %#x,%#x; j%v = %v, want %v", c.a, c.b, c.cc, got, c.want)
		}
	}
}

// TestIncDecPreserveCF verifies INC/DEC leave CF alone but set OF.
func TestIncDecPreserveCF(t *testing.T) {
	v := newBare(t)
	v.cf = true
	v.regs[x86.EAX] = 0x7FFFFFFF
	if err := step(t, v, x86.Inst{Op: x86.INC, Dst: x86.R(x86.EAX)}); err != nil {
		t.Fatal(err)
	}
	if !v.cf {
		t.Fatal("inc must preserve CF")
	}
	if !v.of {
		t.Fatal("inc 0x7FFFFFFF must set OF")
	}
	v.cf = false
	v.regs[x86.EAX] = 0x80000000
	if err := step(t, v, x86.Inst{Op: x86.DEC, Dst: x86.R(x86.EAX)}); err != nil {
		t.Fatal(err)
	}
	if v.cf {
		t.Fatal("dec must preserve CF")
	}
	if !v.of {
		t.Fatal("dec 0x80000000 must set OF")
	}
}

// TestNegFlags verifies NEG's special CF rule.
func TestNegFlags(t *testing.T) {
	v := newBare(t)
	v.regs[x86.EAX] = 0
	if err := step(t, v, x86.Inst{Op: x86.NEG, Dst: x86.R(x86.EAX)}); err != nil {
		t.Fatal(err)
	}
	if v.cf || !v.zf {
		t.Fatal("neg 0: CF must be clear, ZF set")
	}
	v.regs[x86.EAX] = 5
	if err := step(t, v, x86.Inst{Op: x86.NEG, Dst: x86.R(x86.EAX)}); err != nil {
		t.Fatal(err)
	}
	if !v.cf || v.regs[x86.EAX] != u32(-5) {
		t.Fatalf("neg 5 = %d cf=%v", int32(v.regs[x86.EAX]), v.cf)
	}
	v.regs[x86.EAX] = 0x80000000
	if err := step(t, v, x86.Inst{Op: x86.NEG, Dst: x86.R(x86.EAX)}); err != nil {
		t.Fatal(err)
	}
	if !v.of || v.regs[x86.EAX] != 0x80000000 {
		t.Fatal("neg INT_MIN must set OF and leave the value")
	}
}

// u32 reinterprets a signed value as its two's-complement bits.
func u32(v int32) uint32 { return uint32(v) }
