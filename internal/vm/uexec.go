package vm

import (
	"math/bits"
	"time"

	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// This file is the micro-op execution engine: the hot path that replaced
// the per-instruction exec switch. Each cached fragment carries a dense
// []uop.Uop lowered and optimized at translate time (operand forms
// resolved into specialized kinds; adjacent instructions fused; dead
// flag records elided — see uop/opt.go), so the inner loop is one
// jump-table dispatch per micro-op, often covering several guest
// instructions, with no operand re-inspection. Arithmetic flags are
// lazy (see uop.Flags): ALU micro-ops record their inputs and result,
// and individual EFLAGS bits are computed only when Jcc/SETcc/ADC/SBB or
// a generic-fallback instruction consumes them — and the fused
// compare/branch and compare/setcc forms evaluate their condition
// straight from the operands, touching no flag state at all. Hot blocks
// are re-translated into straight-line superblocks with guard exits
// (superblock.go). The old exec engine (exec.go) remains as the
// semantic reference: rare instructions escape to it via KindGeneric,
// and the end-of-fuel slow path re-walks a block on it to preserve
// exact per-instruction trap EIPs.

// ---- lazy flag access --------------------------------------------------

// The VM's cf/zf/sf/of/pf bools are authoritative only while v.fl.Op is
// FlagNone. The f* accessors below read one flag, computing it from the
// lazy record when necessary; they never change the representation, so
// consumers that need a single flag pay for exactly one.

func (v *VM) fCF() bool {
	switch v.fl.Op {
	case uop.FlagNone, uop.FlagSZP:
		return v.cf
	}
	v.stats.FlagsMaterialized++
	return v.fl.CF()
}

func (v *VM) fOF() bool {
	switch v.fl.Op {
	case uop.FlagNone, uop.FlagSZP:
		return v.of
	}
	v.stats.FlagsMaterialized++
	return v.fl.OF()
}

func (v *VM) fZF() bool {
	if v.fl.Op == uop.FlagNone {
		return v.zf
	}
	v.stats.FlagsMaterialized++
	return v.fl.ZF()
}

func (v *VM) fSF() bool {
	if v.fl.Op == uop.FlagNone {
		return v.sf
	}
	v.stats.FlagsMaterialized++
	return v.fl.SF()
}

func (v *VM) fPF() bool {
	if v.fl.Op == uop.FlagNone {
		return v.pf
	}
	v.stats.FlagsMaterialized++
	return v.fl.PF()
}

// materializeFlags resolves the lazy record into the eager bools. Called
// before any code that reads or writes v.cf..v.pf directly: the generic
// escape, the end-of-fuel slow path, and Snapshot.
func (v *VM) materializeFlags() {
	switch v.fl.Op {
	case uop.FlagNone:
		return
	case uop.FlagSZP:
		v.zf, v.sf, v.pf = v.fl.ZF(), v.fl.SF(), v.fl.PF()
		v.stats.FlagsMaterialized += 3
	default:
		v.cf, v.of = v.fl.CF(), v.fl.OF()
		v.zf, v.sf, v.pf = v.fl.ZF(), v.fl.SF(), v.fl.PF()
		v.stats.FlagsMaterialized += 5
	}
	v.fl.Op = uop.FlagNone
}

// ucond evaluates a condition code against the current flags, lazily
// materializing only the flags the condition reads (one for the common
// cmp-then-je case, never more than three).
func (v *VM) ucond(cc x86.CC) bool {
	if v.fl.Op == uop.FlagNone {
		return v.cond(cc)
	}
	switch cc {
	case x86.CCO:
		return v.fOF()
	case x86.CCNO:
		return !v.fOF()
	case x86.CCB:
		return v.fCF()
	case x86.CCAE:
		return !v.fCF()
	case x86.CCE:
		return v.fZF()
	case x86.CCNE:
		return !v.fZF()
	case x86.CCBE:
		return v.fCF() || v.fZF()
	case x86.CCA:
		return !v.fCF() && !v.fZF()
	case x86.CCS:
		return v.fSF()
	case x86.CCNS:
		return !v.fSF()
	case x86.CCP:
		return v.fPF()
	case x86.CCNP:
		return !v.fPF()
	case x86.CCL:
		return v.fSF() != v.fOF()
	case x86.CCGE:
		return v.fSF() == v.fOF()
	case x86.CCLE:
		return v.fZF() || v.fSF() != v.fOF()
	default: // CCG
		return !v.fZF() && v.fSF() == v.fOF()
	}
}

// ---- sandboxed guest memory, fast forms --------------------------------

// rdOK and wrOK are the sandbox bounds checks with the bounds passed as
// hoisted locals, small enough to inline into the dispatch loop. The
// `addr <= limit-size` form rejects address-wraparound for free, since
// limit-size never underflows (every limit is at least one page).

func rdOK(addr, size, brk, stackBase, memLen uint32) bool {
	return (addr >= PageSize && addr <= brk-size) ||
		(addr >= stackBase && addr <= memLen-size)
}

func wrOK(addr, size, roLimit, brk, stackBase, memLen uint32) bool {
	return (addr >= roLimit && addr <= brk-size) ||
		(addr >= stackBase && addr <= memLen-size)
}

// le32 and st32 (uexec_le.go / uexec_portable.go) are the raw
// little-endian guest accesses; bounds must have been checked by the
// caller. They must stay under the compiler's reduced inline budget:
// the execUops dispatch loop is past the big-function threshold, where
// only tiny callees are still inlined — a non-inlined guest load would
// cost more than the load itself.

// The u* accessors are the out-of-line load/store paths used by the
// colder handlers; they report failure as a bool so no error value is
// allocated until a trap is certain.

func (v *VM) uload32(addr uint32) (uint32, bool) {
	if !v.readable(addr, 4) {
		return 0, false
	}
	return le32(v.mem, addr), true
}

func (v *VM) uload8(addr uint32) (uint32, bool) {
	if !v.readable(addr, 1) {
		return 0, false
	}
	return uint32(v.mem[addr]), true
}

func (v *VM) ustore32(addr, val uint32) bool {
	if !v.writable(addr, 4) {
		return false
	}
	st32(v.mem, addr, val)
	return true
}

func (v *VM) ustore8(addr, val uint32) bool {
	if !v.writable(addr, 1) {
		return false
	}
	v.mem[addr] = byte(val)
	return true
}

// memTrap reports a failed guest load.
func memTrap(eip, addr uint32) error {
	return &Trap{Kind: TrapMemory, EIP: eip, Addr: addr}
}

// storeTrap reports a failed guest store, distinguishing a write to
// read-only memory from an out-of-sandbox access exactly as store does.
func (v *VM) storeTrap(eip, addr, size uint32) error {
	k := TrapMemory
	if v.readable(addr, size) {
		k = TrapWrite
	}
	return &Trap{Kind: k, EIP: eip, Addr: addr}
}

// uea computes the effective address of a lowered memory operand.
// Absent base/index registers were mapped to the always-zero regs[8]
// slot at translate time, so there is nothing to test here.
func (v *VM) uea(u *uop.Uop) uint32 {
	return u.Disp + v.regs[u.Base] + v.regs[u.Idx]*uint32(u.Scale)
}

// rd8 and wr8 access a pre-resolved byte register slot.
func (v *VM) rd8(r, sh uint8) uint32 {
	return (v.regs[r] >> sh) & 0xFF
}

func (v *VM) wr8(r, sh uint8, val uint32) {
	v.regs[r] = v.regs[r]&^(uint32(0xFF)<<sh) | (val&0xFF)<<sh
}

// ---- ALU / shift / multiply helpers ------------------------------------

// ualu performs one ALU sub-operation, records the lazy flag state, and
// reports whether the result is written back (CMP/TEST suppress it).
// The hottest 32-bit forms never reach it — they are fully specialized
// kinds inlined in the dispatch loop — so this covers ADC/SBB, byte
// operands and memory destinations.
func (v *VM) ualu(op uop.AluOp, a, b uint32, size uint8) (uint32, bool) {
	if size == 1 {
		return v.ualu8(op, a&0xFF, b&0xFF)
	}
	switch op {
	case uop.AluAdd:
		res := a + b
		v.fl = uop.Flags{Op: uop.FlagAdd, A: a, B: b, Res: res}
		return res, true
	case uop.AluAdc:
		var c uint32
		if v.fCF() {
			c = 1
		}
		res := a + b + c
		v.fl = uop.Flags{Op: uop.FlagAdc, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluSub:
		res := a - b
		v.fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: res}
		return res, true
	case uop.AluSbb:
		var c uint32
		if v.fCF() {
			c = 1
		}
		res := a - b - c
		v.fl = uop.Flags{Op: uop.FlagSbb, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluCmp:
		v.fl = uop.Flags{Op: uop.FlagSub, A: a, B: b, Res: a - b}
		return 0, false
	case uop.AluAnd:
		res := a & b
		v.fl = uop.Flags{Op: uop.FlagLogic, Res: res}
		return res, true
	case uop.AluOr:
		res := a | b
		v.fl = uop.Flags{Op: uop.FlagLogic, Res: res}
		return res, true
	case uop.AluXor:
		res := a ^ b
		v.fl = uop.Flags{Op: uop.FlagLogic, Res: res}
		return res, true
	default: // AluTest
		v.fl = uop.Flags{Op: uop.FlagLogic, Res: a & b}
		return 0, false
	}
}

// ualu8 is the byte-width ALU; a and b arrive pre-masked.
func (v *VM) ualu8(op uop.AluOp, a, b uint32) (uint32, bool) {
	switch op {
	case uop.AluAdd:
		res := (a + b) & 0xFF
		v.fl = uop.Flags{Op: uop.FlagAdd8, A: a, B: b, Res: res}
		return res, true
	case uop.AluAdc:
		var c uint32
		if v.fCF() {
			c = 1
		}
		res := (a + b + c) & 0xFF
		v.fl = uop.Flags{Op: uop.FlagAdc8, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluSub:
		res := (a - b) & 0xFF
		v.fl = uop.Flags{Op: uop.FlagSub8, A: a, B: b, Res: res}
		return res, true
	case uop.AluSbb:
		var c uint32
		if v.fCF() {
			c = 1
		}
		res := (a - b - c) & 0xFF
		v.fl = uop.Flags{Op: uop.FlagSbb8, A: a, B: b, Cin: c, Res: res}
		return res, true
	case uop.AluCmp:
		v.fl = uop.Flags{Op: uop.FlagSub8, A: a, B: b, Res: (a - b) & 0xFF}
		return 0, false
	case uop.AluAnd:
		res := a & b
		v.fl = uop.Flags{Op: uop.FlagLogic8, Res: res}
		return res, true
	case uop.AluOr:
		res := a | b
		v.fl = uop.Flags{Op: uop.FlagLogic8, Res: res}
		return res, true
	case uop.AluXor:
		res := a ^ b
		v.fl = uop.Flags{Op: uop.FlagLogic8, Res: res}
		return res, true
	default: // AluTest
		v.fl = uop.Flags{Op: uop.FlagLogic8, Res: a & b}
		return 0, false
	}
}

// ushift32 performs a 32-bit register shift with a nonzero count in
// 1..31, recording the lazy flag state.
func (v *VM) ushift32(op uop.ShOp, r uint8, count uint32) {
	val := v.regs[r]
	var res uint32
	var fo uop.FlagOp
	switch op {
	case uop.ShShl:
		res = val << count
		fo = uop.FlagShl
	case uop.ShShr:
		res = val >> count
		fo = uop.FlagShr
	default: // ShSar
		res = uint32(int32(val) >> count)
		fo = uop.FlagSar
	}
	v.regs[r] = res
	v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = fo, val, count, res
}

// uimul is the two/three-operand signed multiply: dst = a * b, CF/OF on
// overflow, SF/ZF/PF defined from the low result as in the reference.
func (v *VM) uimul(dst uint8, a, b uint32) {
	full := int64(int32(a)) * int64(int32(b))
	res := uint32(full)
	v.regs[dst] = res
	over := full != int64(int32(res))
	v.cf, v.of = over, over
	v.fl.Op, v.fl.Res = uop.FlagSZP, res
}

// umul1 is the one-operand widening multiply into edx:eax.
func (v *VM) umul1(src uint32, signed bool) {
	if signed {
		full := int64(int32(v.regs[x86.EAX])) * int64(int32(src))
		v.regs[x86.EAX] = uint32(full)
		v.regs[x86.EDX] = uint32(uint64(full) >> 32)
		over := full != int64(int32(full))
		v.cf, v.of = over, over
		v.fl.Op, v.fl.Res = uop.FlagSZP, uint32(full)
		return
	}
	full := uint64(v.regs[x86.EAX]) * uint64(src)
	v.regs[x86.EAX] = uint32(full)
	v.regs[x86.EDX] = uint32(full >> 32)
	over := v.regs[x86.EDX] != 0
	v.cf, v.of = over, over
	v.fl.Op, v.fl.Res = uop.FlagSZP, uint32(full)
}

// udiv is the one-operand divide of edx:eax; flags are unaffected.
func (v *VM) udiv(src uint32, signed bool, eip uint32) error {
	if src == 0 {
		return &Trap{Kind: TrapDivide, EIP: eip}
	}
	if signed {
		dividend := int64(uint64(v.regs[x86.EDX])<<32 | uint64(v.regs[x86.EAX]))
		divisor := int64(int32(src))
		q := dividend / divisor
		if q > 0x7FFFFFFF || q < -0x80000000 {
			return &Trap{Kind: TrapDivide, EIP: eip, Msg: "quotient overflow"}
		}
		v.regs[x86.EAX] = uint32(int32(q))
		v.regs[x86.EDX] = uint32(int32(dividend % divisor))
		return nil
	}
	dividend := uint64(v.regs[x86.EDX])<<32 | uint64(v.regs[x86.EAX])
	q := dividend / uint64(src)
	if q > 0xFFFFFFFF {
		return &Trap{Kind: TrapDivide, EIP: eip, Msg: "quotient overflow"}
	}
	v.regs[x86.EAX] = uint32(q)
	v.regs[x86.EDX] = uint32(dividend % uint64(src))
	return nil
}

// upush32 pushes val, reporting the trap against eip.
func (v *VM) upush32(val, eip uint32) error {
	sp := v.regs[x86.ESP] - 4
	if !v.ustore32(sp, val) {
		return v.storeTrap(eip, sp, 4)
	}
	v.regs[x86.ESP] = sp
	return nil
}

// ---- direct condition evaluation (fused compare forms) ------------------

// condSub evaluates a condition against the flags a CMP (res = a - b)
// would produce, straight from the operands: the fused compare/branch
// and compare/setcc forms never touch the flag machinery on this path.
func condSub(cc x86.CC, a, b uint32) bool {
	switch cc {
	case x86.CCO:
		return (a^b)&(a^(a-b))&0x80000000 != 0
	case x86.CCNO:
		return (a^b)&(a^(a-b))&0x80000000 == 0
	case x86.CCB:
		return a < b
	case x86.CCAE:
		return a >= b
	case x86.CCE:
		return a == b
	case x86.CCNE:
		return a != b
	case x86.CCBE:
		return a <= b
	case x86.CCA:
		return a > b
	case x86.CCS:
		return int32(a-b) < 0
	case x86.CCNS:
		return int32(a-b) >= 0
	case x86.CCP:
		return bits.OnesCount8(uint8(a-b))%2 == 0
	case x86.CCNP:
		return bits.OnesCount8(uint8(a-b))%2 != 0
	case x86.CCL:
		return int32(a) < int32(b)
	case x86.CCGE:
		return int32(a) >= int32(b)
	case x86.CCLE:
		return int32(a) <= int32(b)
	default: // CCG
		return int32(a) > int32(b)
	}
}

// condLogic evaluates a condition against the flags a TEST/logic op
// would produce from its result (CF = OF = 0, ZF/SF/PF from res).
func condLogic(cc x86.CC, res uint32) bool {
	switch cc {
	case x86.CCO, x86.CCB:
		return false
	case x86.CCNO, x86.CCAE:
		return true
	case x86.CCE, x86.CCBE: // ZF (CF is clear)
		return res == 0
	case x86.CCNE, x86.CCA:
		return res != 0
	case x86.CCS:
		return int32(res) < 0
	case x86.CCNS:
		return int32(res) >= 0
	case x86.CCP:
		return bits.OnesCount8(uint8(res))%2 == 0
	case x86.CCNP:
		return bits.OnesCount8(uint8(res))%2 != 0
	case x86.CCL: // SF != OF with OF clear
		return int32(res) < 0
	case x86.CCGE:
		return int32(res) >= 0
	case x86.CCLE:
		return res == 0 || int32(res) < 0
	default: // CCG
		return res != 0 && int32(res) >= 0
	}
}

// ualuQ is the quiet ALU used by the flag-suppressed fused load-op
// form: same arithmetic as ualu, no flag record. Only the non-carry
// ops are ever fused, so there is no carry-in to read.
func (v *VM) ualuQ(op uop.AluOp, a, b uint32) (uint32, bool) {
	switch op {
	case uop.AluAdd:
		return a + b, true
	case uop.AluSub:
		return a - b, true
	case uop.AluAnd:
		return a & b, true
	case uop.AluOr:
		return a | b, true
	case uop.AluXor:
		return a ^ b, true
	default: // AluCmp, AluTest: flag-only, and the flags are dead
		return 0, false
	}
}

// ---- block execution ---------------------------------------------------

// uopTrap accounts for an error raised at micro-op index i of a block
// whose fuel and counters were charged up front: the unexecuted tail —
// in guest-instruction units, since fused micro-ops carry the cost of
// several — is refunded so accounting matches per-instruction
// semantics. A fusable trap site (the load of a fused load-op) is
// always the fused op's first constituent instruction, so the op's own
// cost beyond 1 is refunded too.
func (v *VM) uopTrap(us []uop.Uop, i int, err error) error {
	return v.uopTrapN(us, i, 1, err)
}

// uopTrapN is uopTrap for fused micro-ops whose trap site is not the
// first constituent instruction: started is how many of the fused op's
// guest instructions had begun when the fault hit (the faulting one
// included), matching the reference engine's charge-before-execute
// fuel discipline.
func (v *VM) uopTrapN(us []uop.Uop, i, started int, err error) error {
	unrun := int64(us[i].Cost) - int64(started)
	for j := i + 1; j < len(us); j++ {
		unrun += int64(us[j].Cost)
	}
	v.fuel += unrun
	v.stats.Steps -= uint64(unrun)
	v.stats.UopsExecuted -= uint64(len(us) - i - 1)
	return err
}

// sbLeave accounts for leaving a superblock early at micro-op index i:
// the unexecuted tail's fuel is refunded and the exit is profiled (a
// superblock whose guards fire on most entries has a stale profile and
// is torn down for re-formation).
func (v *VM) sbLeave(br *bref, us []uop.Uop, i int) {
	var tail int64
	for j := i + 1; j < len(us); j++ {
		tail += int64(us[j].Cost)
	}
	v.fuel += tail
	v.stats.Steps -= uint64(tail)
	v.stats.UopsExecuted -= uint64(len(us) - i - 1)

	br.sbExits++
	if o := br.owner; o != nil && br.sbExits > sbMinExits && br.sbExits*2 > br.sbEntries {
		// The dominant path the profile promised is not dominant:
		// detach the superblock and restart profiling from scratch
		// (bounded by sbMaxReforms attempts per block).
		if br.t2 != nil {
			v.stats.Tier2Demotions++
		}
		o.sb = nil
		o.sbTried = o.sbForms >= sbMaxReforms
		o.heat, o.takenCnt, o.fallCnt = 0, 0, 0
	}
}

// guardExit resolves a conditional guard's (static) exit edge through
// the guard's own chain slot.
func (v *VM) guardExit(br *bref, us []uop.Uop, i int, u *uop.Uop) (*bref, error) {
	v.sbLeave(br, us, i)
	if c := br.sbChains[u.Aux]; c != nil {
		return c, nil
	}
	return v.chainTo(&br.sbChains[u.Aux], u.Target)
}

// retGuardExit resolves a return guard's (dynamic) exit edge through
// the guard's monomorphic inline cache.
func (v *VM) retGuardExit(br *bref, us []uop.Uop, i int, u *uop.Uop, target uint32) (*bref, error) {
	v.sbLeave(br, us, i)
	e := &br.sbInd[u.Aux]
	if e.br != nil && e.addr == target {
		return e.br, nil
	}
	nb, err := v.lookupBlock(target)
	if err != nil || v.noCache {
		return nb, err
	}
	e.br, e.addr = nb, target
	v.stats.BlocksChained++
	return nb, nil
}

// chainTo resolves the successor block at addr through the per-VM chain
// slot: after the first resolution, control transfers along this edge
// skip the fragment-cache map lookup entirely. Chain links live in the
// per-VM bref wrapper, never in the shared immutable block, so VMs
// materialized from one snapshot chain independently; Reset drops the
// wrappers, invalidating every link.
func (v *VM) chainTo(slot **bref, addr uint32) (*bref, error) {
	if c := *slot; c != nil {
		return c, nil
	}
	br, err := v.lookupBlock(addr)
	if err != nil || v.noCache {
		return br, err
	}
	*slot = br
	v.stats.BlocksChained++
	return br, nil
}

// indirect resolves an indirect transfer (RET, jmp/call through a
// register or memory) through the block's monomorphic inline cache: a
// repeat of the last observed target skips the map lookup, which makes
// the dominant pattern — a function returning to the one loop that calls
// it — as cheap as a direct chain.
func (v *VM) indirect(br *bref, target uint32) (*bref, error) {
	if c := br.ind; c != nil && br.indAddr == target {
		return c, nil
	}
	nb, err := v.lookupBlock(target)
	if err != nil || v.noCache {
		return nb, err
	}
	br.ind, br.indAddr = nb, target
	v.stats.BlocksChained++
	return nb, nil
}

// execUops runs translated fragments starting at br until the guest
// exits, parks at the done gate, or traps; the returned error is always
// non-nil (errExit/errDone or a *Trap). Staying in one frame keeps the
// hoisted sandbox geometry and register file in registers across block
// transfers.
//
// Fuel is charged once per block — len(uops) on entry — instead of
// decrement-and-compare per instruction. When the remaining budget is
// smaller than the block, execution drops to the reference engine's
// per-instruction walk so the fuel trap reports the exact EIP.
func (v *VM) execUops(br *bref) error {
	// The sandbox geometry is constant during straight-line execution:
	// the only thing that moves it (the setperm syscall) runs under
	// KindInt, after which brk is re-hoisted.
	regs := &v.regs
	mem := v.mem
	memLen := uint32(len(mem))
	roLimit, stackBase := v.roLimit, v.stackBase
	brk := v.brk

blocks:
	for {
		// Cancellation + watchdog poll (RunContext, Config.WallBudget):
		// two cheap compares per block when the run is uncancellable and
		// unwatched; otherwise a countdown decrement, with the channel
		// select and the clock read only every cancelQuantum guest
		// instructions. Nothing here touches the per-uop dispatch loop
		// below.
		if v.cancel != nil || v.wallDeadline != 0 {
			v.cancelCredit -= br.b.cost
			if v.cancelCredit <= 0 {
				v.cancelCredit = cancelQuantum
				if v.cancel != nil {
					select {
					case <-v.cancel:
						return &CanceledError{Cause: v.cancelCause()}
					default:
					}
				}
				if v.wallDeadline != 0 && time.Now().UnixNano() > v.wallDeadline {
					return &WatchdogError{Budget: v.wallBudget}
				}
			}
		}

		// Superblock promotion and hot-path profiling. Once a block has
		// run hot, its dominant path is re-translated into a
		// straight-line superblock (superblock.go) hung off the base
		// bref; entering it swaps br for the superblock's own bref, so
		// every chain slot below stays per-fragment-view. Promotion is
		// skipped when the remaining fuel cannot cover the superblock,
		// keeping the end-of-budget slow path on base blocks (which
		// carry the decoded instructions the reference walk needs).
		if sb := br.sb; sb != nil {
			if v.fuel >= sb.b.cost {
				sb.sbEntries++
				// Tier-2 dispatch: a compiled trace replaces the whole
				// uop walk below; its exit re-joins here with the next
				// bref resolved and brk possibly moved (syscall exits).
				if t := sb.t2; t != nil {
					nb, err := v.runTier2(sb, t)
					if err != nil {
						return err
					}
					br = nb
					brk = v.brk
					continue blocks
				}
				if !sb.t2Tried && !v.noT2 {
					sb.heat++
					if sb.heat >= v.t2Hot {
						v.compileTier2(sb)
						if t := sb.t2; t != nil {
							nb, err := v.runTier2(sb, t)
							if err != nil {
								return err
							}
							br = nb
							brk = v.brk
							continue blocks
						}
					}
				}
				br = sb
			}
		} else if !br.sbTried && !v.noSB {
			br.heat++
			if br.heat >= sbHotThreshold {
				v.formSuperblock(br)
				if sb := br.sb; sb != nil && v.fuel >= sb.b.cost {
					sb.sbEntries++
					br = sb
				}
			}
		}

		b := br.b
		us := b.uops
		n := len(us)
		if v.fuel < b.cost {
			// End-of-budget: re-walk this block on the reference engine
			// for an exact fuel-trap EIP. (The walk always traps before
			// the block completes, but stay general.)
			v.materializeFlags()
			if err := v.execBlock(b); err != nil {
				return err
			}
			nb, err := v.lookupBlock(v.eip)
			if err != nil {
				return err
			}
			br = nb
			brk = v.brk
			continue
		}
		v.fuel -= b.cost
		v.stats.Steps += uint64(b.cost)
		v.stats.UopsExecuted += uint64(n)

		for i := range us {
			u := &us[i]
			switch u.Kind {
			case uop.KindNop:

			// --- moves ---
			case uop.KindMovRR:
				regs[u.Dst] = regs[u.Src]
			case uop.KindMovRI:
				regs[u.Dst] = u.Imm
			case uop.KindMovRR8:
				v.wr8(u.Dst, u.Dsh, v.rd8(u.Src, u.Ssh))
			case uop.KindMovRI8:
				v.wr8(u.Dst, u.Dsh, u.Imm)
			case uop.KindLoad:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Dst] = le32(mem, addr)
			case uop.KindLoad8:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 1, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				v.wr8(u.Dst, u.Dsh, uint32(mem[addr]))
			case uop.KindStore:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !wrOK(addr, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 4))
				}
				st32(mem, addr, regs[u.Src])
			case uop.KindStore8:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !wrOK(addr, 1, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 1))
				}
				mem[addr] = byte(v.rd8(u.Src, u.Ssh))
			case uop.KindStoreI:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !wrOK(addr, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 4))
				}
				st32(mem, addr, u.Imm)
			case uop.KindStoreI8:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !wrOK(addr, 1, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 1))
				}
				mem[addr] = byte(u.Imm)
			case uop.KindLea:
				regs[u.Dst] = u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)

			// --- widening moves ---
			case uop.KindMovzxRR8:
				regs[u.Dst] = v.rd8(u.Src, u.Ssh)
			case uop.KindMovzxRR16:
				regs[u.Dst] = regs[u.Src] & 0xFFFF
			case uop.KindMovzxRM8:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 1, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Dst] = uint32(mem[addr])
			case uop.KindMovzxRM16:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 2, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Dst] = uint32(mem[addr]) | uint32(mem[addr+1])<<8
			case uop.KindMovsxRR8:
				regs[u.Dst] = uint32(int32(int8(v.rd8(u.Src, u.Ssh))))
			case uop.KindMovsxRR16:
				regs[u.Dst] = uint32(int32(int16(regs[u.Src])))
			case uop.KindMovsxRM8:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 1, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Dst] = uint32(int32(int8(mem[addr])))
			case uop.KindMovsxRM16:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 2, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Dst] = uint32(int32(int16(uint32(mem[addr]) | uint32(mem[addr+1])<<8)))

			case uop.KindXchgRR:
				regs[u.Dst], regs[u.Src] = regs[u.Src], regs[u.Dst]

			// --- fully specialized 32-bit ALU forms ---
			case uop.KindAddRR:
				a, bb := regs[u.Dst], regs[u.Src]
				res := a + bb
				regs[u.Dst] = res
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagAdd, a, bb, res
			case uop.KindAddRI:
				a := regs[u.Dst]
				res := a + u.Imm
				regs[u.Dst] = res
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagAdd, a, u.Imm, res
			case uop.KindSubRR:
				a, bb := regs[u.Dst], regs[u.Src]
				res := a - bb
				regs[u.Dst] = res
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, res
			case uop.KindSubRI:
				a := regs[u.Dst]
				res := a - u.Imm
				regs[u.Dst] = res
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, u.Imm, res
			case uop.KindCmpRR:
				a, bb := regs[u.Dst], regs[u.Src]
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, a-bb
			case uop.KindCmpRI:
				a := regs[u.Dst]
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, u.Imm, a-u.Imm
			case uop.KindAndRR:
				res := regs[u.Dst] & regs[u.Src]
				regs[u.Dst] = res
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
			case uop.KindAndRI:
				res := regs[u.Dst] & u.Imm
				regs[u.Dst] = res
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
			case uop.KindOrRR:
				res := regs[u.Dst] | regs[u.Src]
				regs[u.Dst] = res
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
			case uop.KindOrRI:
				res := regs[u.Dst] | u.Imm
				regs[u.Dst] = res
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
			case uop.KindXorRR:
				res := regs[u.Dst] ^ regs[u.Src]
				regs[u.Dst] = res
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
			case uop.KindXorRI:
				res := regs[u.Dst] ^ u.Imm
				regs[u.Dst] = res
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
			case uop.KindTestRR:
				v.fl.Op, v.fl.Res = uop.FlagLogic, regs[u.Dst]&regs[u.Src]
			case uop.KindTestRI:
				v.fl.Op, v.fl.Res = uop.FlagLogic, regs[u.Dst]&u.Imm

			// --- remaining ALU forms (ADC/SBB, memory, byte operands) ---
			case uop.KindAluRR:
				if res, wb := v.ualu(uop.AluOp(u.Sub), regs[u.Dst], regs[u.Src], 4); wb {
					regs[u.Dst] = res
				}
			case uop.KindAluRI:
				if res, wb := v.ualu(uop.AluOp(u.Sub), regs[u.Dst], u.Imm, 4); wb {
					regs[u.Dst] = res
				}
			case uop.KindAluRM:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				if res, wb := v.ualu(uop.AluOp(u.Sub), regs[u.Dst], le32(mem, addr), 4); wb {
					regs[u.Dst] = res
				}
			case uop.KindAluMR:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				if res, wb := v.ualu(uop.AluOp(u.Sub), le32(mem, addr), regs[u.Src], 4); wb {
					if !wrOK(addr, 4, roLimit, brk, stackBase, memLen) {
						return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 4))
					}
					st32(mem, addr, res)
				}
			case uop.KindAluMI:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				if res, wb := v.ualu(uop.AluOp(u.Sub), le32(mem, addr), u.Imm, 4); wb {
					if !wrOK(addr, 4, roLimit, brk, stackBase, memLen) {
						return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 4))
					}
					st32(mem, addr, res)
				}
			case uop.KindAlu8RR:
				if res, wb := v.ualu8(uop.AluOp(u.Sub), v.rd8(u.Dst, u.Dsh), v.rd8(u.Src, u.Ssh)); wb {
					v.wr8(u.Dst, u.Dsh, res)
				}
			case uop.KindAlu8RI:
				if res, wb := v.ualu8(uop.AluOp(u.Sub), v.rd8(u.Dst, u.Dsh), u.Imm); wb {
					v.wr8(u.Dst, u.Dsh, res)
				}
			case uop.KindAlu8RM:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 1, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				if res, wb := v.ualu8(uop.AluOp(u.Sub), v.rd8(u.Dst, u.Dsh), uint32(mem[addr])); wb {
					v.wr8(u.Dst, u.Dsh, res)
				}
			case uop.KindAlu8MR:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 1, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				if res, wb := v.ualu8(uop.AluOp(u.Sub), uint32(mem[addr]), v.rd8(u.Src, u.Ssh)); wb {
					if !wrOK(addr, 1, roLimit, brk, stackBase, memLen) {
						return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 1))
					}
					mem[addr] = byte(res)
				}
			case uop.KindAlu8MI:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 1, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				if res, wb := v.ualu8(uop.AluOp(u.Sub), uint32(mem[addr]), u.Imm); wb {
					if !wrOK(addr, 1, roLimit, brk, stackBase, memLen) {
						return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 1))
					}
					mem[addr] = byte(res)
				}

			case uop.KindIncR:
				cf := v.fCF() // INC preserves CF
				val := regs[u.Dst]
				res := val + 1
				regs[u.Dst] = res
				v.fl = uop.Flags{Op: uop.FlagAddKeep, A: val, B: 1, Res: res, KeptCF: cf}
			case uop.KindDecR:
				cf := v.fCF() // DEC preserves CF
				val := regs[u.Dst]
				res := val - 1
				regs[u.Dst] = res
				v.fl = uop.Flags{Op: uop.FlagSubKeep, A: val, B: 1, Res: res, KeptCF: cf}
			case uop.KindNegR:
				val := regs[u.Dst]
				res := -val
				regs[u.Dst] = res
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, 0, val, res
			case uop.KindNotR:
				regs[u.Dst] = ^regs[u.Dst]

			// --- shifts ---
			case uop.KindShiftRI:
				v.ushift32(uop.ShOp(u.Sub), u.Dst, u.Imm)
			case uop.KindShiftRCL:
				if c := regs[x86.ECX] & 31; c != 0 {
					v.ushift32(uop.ShOp(u.Sub), u.Dst, c)
				}

			// --- multiply / divide ---
			case uop.KindImulRR:
				v.uimul(u.Dst, regs[u.Dst], regs[u.Src])
			case uop.KindImulRM:
				bv, ok := v.uload32(v.uea(u))
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, v.uea(u)))
				}
				v.uimul(u.Dst, regs[u.Dst], bv)
			case uop.KindImulRRI:
				v.uimul(u.Dst, u.Imm, regs[u.Src])
			case uop.KindImulRMI:
				bv, ok := v.uload32(v.uea(u))
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, v.uea(u)))
				}
				v.uimul(u.Dst, u.Imm, bv)
			case uop.KindMulR:
				v.umul1(regs[u.Src], u.Sub != 0)
			case uop.KindMulM:
				val, ok := v.uload32(v.uea(u))
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, v.uea(u)))
				}
				v.umul1(val, u.Sub != 0)
			case uop.KindDivR:
				if err := v.udiv(regs[u.Src], u.Sub != 0, u.EIP); err != nil {
					return v.uopTrap(us, i, err)
				}
			case uop.KindDivM:
				val, ok := v.uload32(v.uea(u))
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, v.uea(u)))
				}
				if err := v.udiv(val, u.Sub != 0, u.EIP); err != nil {
					return v.uopTrap(us, i, err)
				}
			case uop.KindCdq:
				regs[x86.EDX] = uint32(int32(regs[x86.EAX]) >> 31)

			// --- stack ---
			case uop.KindPushR:
				sp := regs[x86.ESP] - 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, sp, 4))
				}
				st32(mem, sp, regs[u.Src])
				regs[x86.ESP] = sp
			case uop.KindPushI:
				sp := regs[x86.ESP] - 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, sp, 4))
				}
				st32(mem, sp, u.Imm)
				regs[x86.ESP] = sp
			case uop.KindPushM:
				val, ok := v.uload32(v.uea(u))
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, v.uea(u)))
				}
				if err := v.upush32(val, u.EIP); err != nil {
					return v.uopTrap(us, i, err)
				}
			case uop.KindPopR:
				sp := regs[x86.ESP]
				if !rdOK(sp, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, sp))
				}
				regs[x86.ESP] = sp + 4
				regs[u.Dst] = le32(mem, sp) // a popped ESP wins over the increment
			case uop.KindPopM:
				sp := regs[x86.ESP]
				val, ok := v.uload32(sp)
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, sp))
				}
				regs[x86.ESP] = sp + 4
				addr := v.uea(u) // the store address sees the popped ESP
				if !v.ustore32(addr, val) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 4))
				}

			// --- setcc ---
			case uop.KindSetccR8:
				var val uint32
				if v.ucond(x86.CC(u.Sub)) {
					val = 1
				}
				v.wr8(u.Dst, u.Dsh, val)
			case uop.KindSetccM8:
				var val uint32
				if v.ucond(x86.CC(u.Sub)) {
					val = 1
				}
				addr := v.uea(u)
				if !v.ustore8(addr, val) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, addr, 1))
				}

			// --- flag-suppressed ALU forms (dead-flag elimination) ---
			case uop.KindAddRRNF:
				regs[u.Dst] += regs[u.Src]
			case uop.KindAddRINF:
				regs[u.Dst] += u.Imm
			case uop.KindSubRRNF:
				regs[u.Dst] -= regs[u.Src]
			case uop.KindSubRINF:
				regs[u.Dst] -= u.Imm
			case uop.KindAndRRNF:
				regs[u.Dst] &= regs[u.Src]
			case uop.KindAndRINF:
				regs[u.Dst] &= u.Imm
			case uop.KindOrRRNF:
				regs[u.Dst] |= regs[u.Src]
			case uop.KindOrRINF:
				regs[u.Dst] |= u.Imm
			case uop.KindXorRRNF:
				regs[u.Dst] ^= regs[u.Src]
			case uop.KindXorRINF:
				regs[u.Dst] ^= u.Imm
			case uop.KindIncRNF:
				regs[u.Dst]++
			case uop.KindDecRNF:
				regs[u.Dst]--
			case uop.KindShiftRINF:
				switch uop.ShOp(u.Sub) {
				case uop.ShShl:
					regs[u.Dst] <<= u.Imm
				case uop.ShShr:
					regs[u.Dst] >>= u.Imm
				default: // ShSar
					regs[u.Dst] = uint32(int32(regs[u.Dst]) >> u.Imm)
				}
			case uop.KindShiftRCLNF:
				if c := regs[x86.ECX] & 31; c != 0 {
					switch uop.ShOp(u.Sub) {
					case uop.ShShl:
						regs[u.Dst] <<= c
					case uop.ShShr:
						regs[u.Dst] >>= c
					default: // ShSar
						regs[u.Dst] = uint32(int32(regs[u.Dst]) >> c)
					}
				}

			// --- fused compare/setcc and boolean materialization ---
			case uop.KindCmpSetccRR, uop.KindCmpSetccRI:
				a, bb := regs[u.Src], u.Imm
				if u.Kind == uop.KindCmpSetccRR {
					bb = regs[u.Aux]
				}
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, a-bb
				var val uint32
				if condSub(x86.CC(u.Sub), a, bb) {
					val = 1
				}
				v.wr8(u.Dst, u.Dsh, val)
			case uop.KindTestSetccRR, uop.KindTestSetccRI:
				res := regs[u.Src] & u.Imm
				if u.Kind == uop.KindTestSetccRR {
					res = regs[u.Src] & regs[u.Aux]
				}
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
				var val uint32
				if condLogic(x86.CC(u.Sub), res) {
					val = 1
				}
				v.wr8(u.Dst, u.Dsh, val)
			case uop.KindCmpBoolRR, uop.KindCmpBoolRI:
				a, bb := regs[u.Src], u.Imm
				if u.Kind == uop.KindCmpBoolRR {
					bb = regs[u.Aux]
				}
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, a-bb
				var val uint32
				if condSub(x86.CC(u.Sub), a, bb) {
					val = 1
				}
				regs[u.Dst] = val
			case uop.KindTestBoolRR, uop.KindTestBoolRI:
				res := regs[u.Src] & u.Imm
				if u.Kind == uop.KindTestBoolRR {
					res = regs[u.Src] & regs[u.Aux]
				}
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
				var val uint32
				if condLogic(x86.CC(u.Sub), res) {
					val = 1
				}
				regs[u.Dst] = val
			case uop.KindCmpBoolRRNF, uop.KindCmpBoolRINF:
				a, bb := regs[u.Src], u.Imm
				if u.Kind == uop.KindCmpBoolRRNF {
					bb = regs[u.Aux]
				}
				var val uint32
				if condSub(x86.CC(u.Sub), a, bb) {
					val = 1
				}
				regs[u.Dst] = val
			case uop.KindTestBoolRRNF, uop.KindTestBoolRINF:
				res := regs[u.Src] & u.Imm
				if u.Kind == uop.KindTestBoolRRNF {
					res = regs[u.Src] & regs[u.Aux]
				}
				var val uint32
				if condLogic(x86.CC(u.Sub), res) {
					val = 1
				}
				regs[u.Dst] = val

			// --- fused load-op ---
			case uop.KindLoadAluRR:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Aux] = le32(mem, addr)
				if res, wb := v.ualu(uop.AluOp(u.Sub), regs[u.Dst], regs[u.Src], 4); wb {
					regs[u.Dst] = res
				}
			case uop.KindLoadAluRRNF:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Aux] = le32(mem, addr)
				if res, wb := v.ualuQ(uop.AluOp(u.Sub), regs[u.Dst], regs[u.Src]); wb {
					regs[u.Dst] = res
				}

			// --- data-movement pair fusions ---
			case uop.KindMovPop:
				regs[u.Aux] = regs[u.Src]
				sp := regs[x86.ESP]
				if !rdOK(sp, 4, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, memTrap(u.Imm, sp))
				}
				regs[x86.ESP] = sp + 4
				regs[u.Dst] = le32(mem, sp)
			case uop.KindMovPopAluRR, uop.KindMovPopAluRRNF:
				regs[u.Aux] = regs[u.Src]
				sp := regs[x86.ESP]
				if !rdOK(sp, 4, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, memTrap(u.Imm, sp))
				}
				regs[x86.ESP] = sp + 4
				a, bb := le32(mem, sp), regs[u.Aux]
				var res uint32
				switch uop.AluOp(u.Sub) {
				case uop.AluAdd:
					res = a + bb
					if u.Kind == uop.KindMovPopAluRR {
						v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagAdd, a, bb, res
					}
				case uop.AluSub:
					res = a - bb
					if u.Kind == uop.KindMovPopAluRR {
						v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, res
					}
				case uop.AluAnd:
					res = a & bb
					if u.Kind == uop.KindMovPopAluRR {
						v.fl.Op, v.fl.Res = uop.FlagLogic, res
					}
				case uop.AluOr:
					res = a | bb
					if u.Kind == uop.KindMovPopAluRR {
						v.fl.Op, v.fl.Res = uop.FlagLogic, res
					}
				default: // AluXor
					res = a ^ bb
					if u.Kind == uop.KindMovPopAluRR {
						v.fl.Op, v.fl.Res = uop.FlagLogic, res
					}
				}
				regs[u.Dst] = res
			case uop.KindPushLoad:
				sp := regs[x86.ESP] - 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, sp, 4))
				}
				st32(mem, sp, regs[u.Src])
				regs[x86.ESP] = sp
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, memTrap(u.Imm, addr))
				}
				regs[u.Dst] = le32(mem, addr)
			case uop.KindLoadPush:
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, addr))
				}
				regs[u.Aux] = le32(mem, addr)
				sp := regs[x86.ESP] - 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, v.storeTrap(u.Imm, sp, 4))
				}
				st32(mem, sp, regs[u.Src])
				regs[x86.ESP] = sp
			case uop.KindPushMovI:
				sp := regs[x86.ESP] - 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, sp, 4))
				}
				st32(mem, sp, regs[u.Src])
				regs[x86.ESP] = sp
				regs[u.Dst] = u.Imm
			case uop.KindMovIPush:
				regs[u.Dst] = u.Imm
				sp := regs[x86.ESP] - 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, v.storeTrap(u.Disp, sp, 4))
				}
				st32(mem, sp, regs[u.Src])
				regs[x86.ESP] = sp
			case uop.KindMovIMov:
				regs[u.Dst] = u.Imm
				regs[u.Aux] = regs[u.Src]
			case uop.KindMovLoad:
				regs[u.Aux] = regs[u.Src]
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !rdOK(addr, 4, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, memTrap(u.Imm, addr))
				}
				regs[u.Dst] = le32(mem, addr)
			case uop.KindPopStore:
				sp := regs[x86.ESP]
				if !rdOK(sp, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, sp))
				}
				regs[x86.ESP] = sp + 4
				regs[u.Dst] = le32(mem, sp) // a popped ESP wins over the increment
				addr := u.Disp + regs[u.Base] + regs[u.Idx]*uint32(u.Scale)
				if !wrOK(addr, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, v.storeTrap(u.Imm, addr, 4))
				}
				st32(mem, addr, regs[u.Src])

			// --- superblock guard exits ---
			case uop.KindGuard:
				if !v.ucond(x86.CC(u.Sub)) {
					break // stay on the trace
				}
				v.eip = u.Target
				nb, err := v.guardExit(br, us, i, u)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindGuardCmpRR, uop.KindGuardCmpRI:
				a, bb := regs[u.Dst], u.Imm
				if u.Kind == uop.KindGuardCmpRR {
					bb = regs[u.Src]
				}
				// The compare executes on both paths: record its flags.
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, a-bb
				if !condSub(x86.CC(u.Sub), a, bb) {
					break
				}
				v.eip = u.Target
				nb, err := v.guardExit(br, us, i, u)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindGuardTestRR, uop.KindGuardTestRI:
				res := regs[u.Dst] & u.Imm
				if u.Kind == uop.KindGuardTestRR {
					res = regs[u.Dst] & regs[u.Src]
				}
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
				if !condLogic(x86.CC(u.Sub), res) {
					break
				}
				v.eip = u.Target
				nb, err := v.guardExit(br, us, i, u)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindGuardCmpRRNF, uop.KindGuardCmpRINF:
				a, bb := regs[u.Dst], u.Imm
				if u.Kind == uop.KindGuardCmpRRNF {
					bb = regs[u.Src]
				}
				if !condSub(x86.CC(u.Sub), a, bb) {
					break // flags provably dead on the trace
				}
				// Exiting: the compare's flags become the visible state.
				v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, a-bb
				v.eip = u.Target
				nb, err := v.guardExit(br, us, i, u)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindGuardTestRRNF, uop.KindGuardTestRINF:
				res := regs[u.Dst] & u.Imm
				if u.Kind == uop.KindGuardTestRRNF {
					res = regs[u.Dst] & regs[u.Src]
				}
				if !condLogic(x86.CC(u.Sub), res) {
					break
				}
				v.fl.Op, v.fl.Res = uop.FlagLogic, res
				v.eip = u.Target
				nb, err := v.guardExit(br, us, i, u)
				if err != nil {
					return err
				}
				br = nb
				continue blocks

			// --- control transfers (always the last micro-op) ---
			case uop.KindJmp:
				v.eip = u.Target
				if c := br.taken; c != nil {
					br = c
					continue blocks
				}
				nb, err := v.chainTo(&br.taken, u.Target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindJcc:
				if v.ucond(x86.CC(u.Sub)) {
					br.takenCnt++
					v.eip = u.Target
					if c := br.taken; c != nil {
						br = c
						continue blocks
					}
					nb, err := v.chainTo(&br.taken, u.Target)
					if err != nil {
						return err
					}
					br = nb
					continue blocks
				}
				br.fallCnt++
				v.eip = u.Next
				if c := br.fall; c != nil {
					br = c
					continue blocks
				}
				nb, err := v.chainTo(&br.fall, u.Next)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindCmpJccRR, uop.KindCmpJccRI,
				uop.KindTestJccRR, uop.KindTestJccRI:
				// Fused compare/branch: the condition is evaluated
				// directly from the compare operands (no flag
				// materialization); the compare's record is still
				// written for whatever the successor block may read.
				var take bool
				switch u.Kind {
				case uop.KindCmpJccRR, uop.KindCmpJccRI:
					a, bb := regs[u.Dst], u.Imm
					if u.Kind == uop.KindCmpJccRR {
						bb = regs[u.Src]
					}
					v.fl.Op, v.fl.A, v.fl.B, v.fl.Res = uop.FlagSub, a, bb, a-bb
					take = condSub(x86.CC(u.Sub), a, bb)
				default:
					res := regs[u.Dst] & u.Imm
					if u.Kind == uop.KindTestJccRR {
						res = regs[u.Dst] & regs[u.Src]
					}
					v.fl.Op, v.fl.Res = uop.FlagLogic, res
					take = condLogic(x86.CC(u.Sub), res)
				}
				if take {
					br.takenCnt++
					v.eip = u.Target
					if c := br.taken; c != nil {
						br = c
						continue blocks
					}
					nb, err := v.chainTo(&br.taken, u.Target)
					if err != nil {
						return err
					}
					br = nb
					continue blocks
				}
				br.fallCnt++
				v.eip = u.Next
				if c := br.fall; c != nil {
					br = c
					continue blocks
				}
				nb, err := v.chainTo(&br.fall, u.Next)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindCall:
				if err := v.upush32(u.Next, u.EIP); err != nil {
					return v.uopTrap(us, i, err)
				}
				v.eip = u.Target
				if c := br.taken; c != nil {
					br = c
					continue blocks
				}
				nb, err := v.chainTo(&br.taken, u.Target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindCallR:
				target := regs[u.Src]
				if err := v.upush32(u.Next, u.EIP); err != nil {
					return v.uopTrap(us, i, err)
				}
				v.eip = target
				nb, err := v.indirect(br, target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindCallM:
				target, ok := v.uload32(v.uea(u))
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, v.uea(u)))
				}
				if err := v.upush32(u.Next, u.EIP); err != nil {
					return v.uopTrap(us, i, err)
				}
				v.eip = target
				nb, err := v.indirect(br, target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindRet:
				sp := regs[x86.ESP]
				if !rdOK(sp, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, sp))
				}
				target := le32(mem, sp)
				regs[x86.ESP] = sp + 4 + u.Imm
				v.eip = target
				if c := br.ind; c != nil && br.indAddr == target {
					br = c
					continue blocks
				}
				nb, err := v.indirect(br, target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindPushCall:
				sp := regs[x86.ESP] - 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrap(us, i, v.storeTrap(u.EIP, sp, 4))
				}
				st32(mem, sp, regs[u.Src])
				regs[x86.ESP] = sp
				sp -= 4
				if !wrOK(sp, 4, roLimit, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, v.storeTrap(u.Imm, sp, 4))
				}
				st32(mem, sp, u.Next)
				regs[x86.ESP] = sp
				v.eip = u.Target
				if c := br.taken; c != nil {
					br = c
					continue blocks
				}
				nb, err := v.chainTo(&br.taken, u.Target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindPopRet:
				// Fusion guarantees Dst != ESP, so the RET pops sp+4.
				sp := regs[x86.ESP]
				if !rdOK(sp, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, sp))
				}
				regs[x86.ESP] = sp + 4
				regs[u.Dst] = le32(mem, sp)
				if !rdOK(sp+4, 4, brk, stackBase, memLen) {
					return v.uopTrapN(us, i, 2, memTrap(u.Disp, sp+4))
				}
				target := le32(mem, sp+4)
				regs[x86.ESP] = sp + 8 + u.Imm
				v.eip = target
				if c := br.ind; c != nil && br.indAddr == target {
					br = c
					continue blocks
				}
				nb, err := v.indirect(br, target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindRetGuard:
				sp := regs[x86.ESP]
				if !rdOK(sp, 4, brk, stackBase, memLen) {
					return v.uopTrap(us, i, memTrap(u.EIP, sp))
				}
				target := le32(mem, sp)
				regs[x86.ESP] = sp + 4 + u.Imm
				if target == u.Target {
					break // the inlined return: stay on the trace
				}
				v.eip = target
				nb, err := v.retGuardExit(br, us, i, u, target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindJmpR:
				target := regs[u.Src]
				v.eip = target
				nb, err := v.indirect(br, target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindJmpM:
				target, ok := v.uload32(v.uea(u))
				if !ok {
					return v.uopTrap(us, i, memTrap(u.EIP, v.uea(u)))
				}
				v.eip = target
				nb, err := v.indirect(br, target)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindInt:
				v.eip = u.Next // the guest resumes after the gate
				if u.Imm != 0x80 {
					return v.uopTrap(us, i, &Trap{Kind: TrapSyscall, EIP: u.EIP,
						Msg: "interrupt vector not the VXA syscall gate"})
				}
				if err := v.syscall(); err != nil {
					return v.uopTrap(us, i, err)
				}
				brk = v.brk // setperm may have grown the heap
				if c := br.taken; c != nil {
					br = c
					continue blocks
				}
				nb, err := v.chainTo(&br.taken, u.Next)
				if err != nil {
					return err
				}
				br = nb
				continue blocks
			case uop.KindHlt:
				return v.uopTrap(us, i, &Trap{Kind: TrapIllegal, EIP: u.EIP, Msg: "privileged instruction"})
			case uop.KindUd2:
				return v.uopTrap(us, i, &Trap{Kind: TrapIllegal, EIP: u.EIP, Msg: "ud2"})

			// --- escapes to the reference engine ---
			case uop.KindString:
				v.eip = u.EIP // string traps report the op itself
				if err := v.stringOp(u.Inst); err != nil {
					return v.uopTrap(us, i, err)
				}
			default: // KindGeneric
				v.materializeFlags()
				if err := v.exec(u.Inst, u.EIP); err != nil {
					return v.uopTrap(us, i, err)
				}
			}
		}

		// The block ended without a control transfer (fragment length
		// cap): fall through to the next address.
		v.eip = b.end
		if c := br.fall; c != nil {
			br = c
			continue
		}
		nb, err := v.chainTo(&br.fall, b.end)
		if err != nil {
			return err
		}
		br = nb
	}
}
