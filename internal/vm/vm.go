// Package vm implements the VXA virtual machine: the sandboxed execution
// environment in which archived decoders run (the analog of the paper's
// vx32 virtual machine monitor).
//
// The VM executes the x86-32 subset defined by package x86 over a flat
// guest address space that always starts at virtual address 0, exactly as
// the paper specifies (§2.4). The guest has no access to host operating
// system services: its only I/O is the five VXA virtual system calls —
// read, write, exit, setperm and done — invoked through INT 0x80
// (§4.3). Three virtual file handles exist: stdin (0) is the encoded
// input stream, stdout (1) is the decoded output stream, and stderr (2)
// carries diagnostics.
//
// Where vx32 sandboxes by dynamic x86-to-x86 translation plus host
// segmentation, this implementation interprets the guest code in Go. It
// keeps vx32's structure: guest code is scanned and decoded into cached
// basic-block fragments keyed by entry address, direct branches chain
// from fragment to fragment, and indirect branches resolve through the
// fragment-cache lookup — the exact mechanism whose cost the paper's
// vorbis-inlining anecdote (§5.2) measures. Every memory access is
// bounds-checked against the sandbox, so a buggy or malicious decoder can
// at worst garble its own output stream (§2.4).
//
// Determinism: a decoder cannot observe the host system, the time, or
// any source of nondeterminism; identical inputs produce identical
// outputs, which the archive integrity checker relies on.
package vm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"vxa/internal/vm/tier2"
	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// Guest address-space layout constants.
const (
	// PageSize is the allocation granularity; the first page is never
	// mapped so that null-pointer dereferences trap.
	PageSize = 0x1000

	// MaxMemSize caps the guest address space at 1 GiB (§4.1).
	MaxMemSize = 1 << 30

	// DefaultMemSize is the guest address space given to decoders unless
	// the archive requests more.
	DefaultMemSize = 16 << 20

	// DefaultStackSize is the size of the stack region at the top of the
	// guest address space.
	DefaultStackSize = 1 << 20

	// DefaultFuel bounds the number of guest instructions a single Run
	// may execute, so that a looping decoder cannot hang the archiver.
	DefaultFuel = int64(1) << 40
)

// The VXA virtual system call numbers (INT 0x80, number in EAX).
const (
	SysExit    = 1 // exit(status)        — decoder finished, EBX = status
	SysRead    = 3 // read(fd, buf, n)    — fd must be 0 (stdin)
	SysWrite   = 4 // write(fd, buf, n)   — fd must be 1 (stdout) or 2 (stderr)
	SysSetPerm = 5 // setperm(addr, len)  — extend the accessible heap
	SysDone    = 6 // done()              — stream finished; ready for another
)

// Virtual errno values returned (negated) by failed system calls.
const (
	ErrnoBADF  = 9
	ErrnoFAULT = 14
	ErrnoINVAL = 22
	ErrnoIO    = 5
	ErrnoNOMEM = 12
)

// TrapKind classifies why the VM stopped the guest.
type TrapKind int

// Trap kinds.
const (
	TrapMemory  TrapKind = iota // out-of-sandbox or misaligned access
	TrapIllegal                 // instruction outside the VXA subset
	TrapSyscall                 // unknown system call or interrupt vector
	TrapDivide                  // divide by zero or quotient overflow
	TrapFuel                    // instruction budget exhausted
	TrapWrite                   // write to read-only (text/rodata) region
)

var trapNames = map[TrapKind]string{
	TrapMemory: "memory fault", TrapIllegal: "illegal instruction",
	TrapSyscall: "bad system call", TrapDivide: "divide error",
	TrapFuel: "fuel exhausted", TrapWrite: "write to read-only memory",
}

// Trap is the error type for guest faults. Any trap means the decoder is
// buggy or malicious; the archive reader reports the affected file as
// undecodable and the host is unaffected.
type Trap struct {
	Kind TrapKind
	EIP  uint32 // faulting instruction address
	Addr uint32 // faulting memory address, if relevant
	Msg  string
}

// Error implements error.
func (t *Trap) Error() string {
	s := fmt.Sprintf("vm: %s at eip=%#x", trapNames[t.Kind], t.EIP)
	if t.Kind == TrapMemory || t.Kind == TrapWrite {
		s += fmt.Sprintf(" addr=%#x", t.Addr)
	}
	if t.Msg != "" {
		s += ": " + t.Msg
	}
	return s
}

// Status reports how a Run returned.
type Status int

// Run outcomes.
const (
	// StatusExit: the guest invoked exit; the VM cannot be resumed.
	StatusExit Status = iota
	// StatusDone: the guest invoked done, signalling that it finished one
	// stream and can accept another; swap Stdin/Stdout and call Run again.
	StatusDone
)

// Config configures a VM.
type Config struct {
	// MemSize is the total guest address space in bytes.
	// Defaults to DefaultMemSize; capped at MaxMemSize.
	MemSize uint32
	// StackSize is the reserved stack region at the top of the address
	// space. Defaults to DefaultStackSize.
	StackSize uint32
	// Fuel is the guest instruction budget per VM. Defaults to DefaultFuel.
	Fuel int64
	// NoBlockCache disables the basic-block fragment cache, forcing the VM
	// to re-decode every instruction (the §4.2 translation-cache ablation).
	// It also disables the translation-time optimizer: single-instruction
	// fragments have nothing to fuse or analyze.
	NoBlockCache bool

	// NoFlagElision disables the optimizer's dead-flag elimination pass
	// (per-pass ablation; see uop.Optimize).
	NoFlagElision bool
	// NoFusion disables the optimizer's compare/branch, compare/setcc
	// and load-op fusion pass (per-pass ablation).
	NoFusion bool
	// NoSuperblocks disables hot-path superblock formation (per-pass
	// ablation; see superblock.go).
	NoSuperblocks bool
	// NoTier2 disables the tier-2 compiled backend (per-tier ablation;
	// see internal/vm/tier2): hot superblocks keep executing on the
	// tier-1 uop dispatch loop instead of being fused into compiled
	// closure traces. Carried by snapshots like NoSuperblocks. The
	// VXA_NO_TIER2 environment variable forces it on process-wide.
	NoTier2 bool

	// WallBudget is the wall-clock watchdog: the maximum real time one
	// RunStream may take, enforced at block-chain boundaries on the
	// cancellation-poll cadence. Unlike fuel (a deterministic
	// instruction budget), the watchdog catches guests that are
	// fuel-cheap but wall-expensive — tight syscall loops, pathological
	// I/O patterns. Zero disables it. The budget survives snapshot
	// materialization and Reset, so pooled VMs keep their watchdog.
	WallBudget time.Duration
}

// Stats are execution counters exposed for the evaluation harness and,
// aggregated, on the vxad metrics endpoint (hence the JSON tags).
type Stats struct {
	Steps             uint64 `json:"steps"`              // guest instructions executed
	BlockLookups      uint64 `json:"block_lookups"`      // fragment-cache map lookups (chain misses + indirect control flow)
	BlocksBuilt       uint64 `json:"blocks_built"`       // fragments decoded and lowered ("translated")
	BlocksChained     uint64 `json:"blocks_chained"`     // direct-successor links installed between fragments
	UopsExecuted      uint64 `json:"uops_executed"`      // micro-ops dispatched by the translation engine
	FlagsMaterialized uint64 `json:"flags_materialized"` // individual EFLAGS bits computed from lazy records
	FlagsElided       uint64 `json:"flags_elided"`       // lazy-flag records removed at translate time (dead-flag pass)
	UopsFused         uint64 `json:"uops_fused"`         // fused micro-ops created at translate time (each replaces 2-3)
	SuperblocksFormed uint64 `json:"superblocks_formed"` // hot-path superblocks assembled from edge profiles
	Tier2Compiled     uint64 `json:"tier2_compiled"`     // superblock traces fused into tier-2 closure programs
	Tier2Executed     uint64 `json:"tier2_executed"`     // tier-2 trace iterations run (one full superblock pass each)
	Tier2Steps        uint64 `json:"tier2_steps"`        // guest instructions retired inside tier-2 traces (subset of Steps)
	Tier2Demotions    uint64 `json:"tier2_demotions"`    // compiled traces dropped with their superblock (stale profile teardown)
	TranslateNS       uint64 `json:"translate_ns"`       // nanoseconds spent decoding+lowering fragments (0 with NoBlockCache)
	ExecuteNS         uint64 `json:"execute_ns"`         // nanoseconds spent running translated code (Run wall time minus translation)
	Syscalls          uint64 `json:"syscalls"`
}

// VM is one sandboxed guest. It is not safe for concurrent use.
type VM struct {
	mem []byte
	// memOwner keeps the guest address space's mapping alive: on Linux
	// mem is anonymous-mmap memory outside the Go heap (see mem_linux.go)
	// and is returned to the kernel when the owner is collected, so the
	// VM must reference the owner for as long as mem is in use.
	memOwner *guestMem
	// regs holds the eight architectural registers plus a ninth slot
	// (uop.RegZero) that is always zero: lowered memory operands index it
	// for absent base/index registers, making effective-address
	// computation branchless. Nothing ever writes regs[8].
	regs [9]uint32
	eip  uint32

	// EFLAGS subset (the arithmetic flags the subset can observe). The
	// bools are the materialized ("eager") representation and are
	// authoritative only while fl.Op == uop.FlagNone; otherwise fl holds
	// the deferred inputs of the last flag-writing operation and bits are
	// computed on demand (see uexec.go).
	cf, zf, sf, of, pf bool
	fl                 uop.Flags

	// Sandbox bounds. The accessible regions are [PageSize, brk) for
	// code/data/heap and [stackBase, memSize) for the stack; everything
	// else (including page 0 and the guard gap between heap and stack)
	// faults. Writes below roLimit fault (text and rodata are read-only).
	brk       uint32
	roLimit   uint32
	stackBase uint32
	// dirtyBrk is the high-water mark of heap exposure on this address
	// space: the largest value brk has ever held since the memory was
	// allocated. Every write path below stackBase is bounded by brk, so
	// mem[dirtyBrk:stackBase) still holds the zeroed pages allocGuestMem
	// returned and sysSetPerm need not re-clear them. It survives Reset
	// (the old heap stays dirty) and only ever grows.
	dirtyBrk uint32

	fuel    int64
	noCache bool
	noSB    bool
	noT2    bool
	// t2Hot is the superblock-entry count that triggers tier-2
	// compilation (t2HotDefault, overridable via VXA_TIER2_HOT).
	t2Hot uint32
	// t2m is this VM's tier-2 machine-state view, allocated on first
	// compile and never reallocated: compiled closures capture pointers
	// into it (see tier2.Machine).
	t2m    *tier2.Machine
	optCfg uop.OptConfig
	blocks map[uint32]*bref

	// Cooperative cancellation (RunContext). cancel is the context's
	// done channel, nil when the run is uncancellable — the common case,
	// reducing the hot-loop cost to one nil check per block. The channel
	// is polled only every cancelQuantum guest instructions
	// (cancelCredit counts down by block cost), so the select never
	// appears on the per-uop path.
	cancel       <-chan struct{}
	cancelCause  func() error
	cancelCredit int64

	// Wall-clock watchdog (Config.WallBudget). wallDeadline is the
	// absolute deadline (unix nanos) of the in-flight stream, armed by
	// RunStream and zero otherwise; it shares the cancelCredit
	// countdown with cancellation so the clock is read at most once per
	// cancelQuantum guest instructions.
	wallBudget   time.Duration
	wallDeadline int64

	// Stdin is the encoded input stream (virtual fd 0).
	Stdin io.Reader
	// Stdout receives the decoded output stream (virtual fd 1).
	Stdout io.Writer
	// Stderr receives decoder diagnostics (virtual fd 2). May be nil,
	// in which case diagnostics are discarded (vxUnZIP shows them only
	// in verbose mode).
	Stderr io.Writer

	exitCode int32
	stats    Stats
}

// block is one translated fragment: the decoded instructions plus their
// lowered, optimized micro-op form. Blocks are immutable after
// construction and may be shared by many VMs through a Snapshot.
// Superblocks (superblock.go) reuse the same type with insts/addrs nil:
// they are per-VM and never enter the snapshot-shared cache.
type block struct {
	insts []x86.Inst
	addrs []uint32  // eip of each instruction
	uops  []uop.Uop // lowered form; fusion may make this shorter than insts
	end   uint32    // address just past the last instruction
	cost  int64     // guest instructions per straight-line execution (fuel units)
}

// bref is the per-VM view of a block: the shared immutable fragment plus
// this VM's chain links to its direct successors and a monomorphic
// inline cache for its indirect successor (the last RET / indirect
// jump/call target seen). Keeping the links out of the shared block lets
// VMs materialized from one snapshot chain independently (and
// race-free); Reset swaps in fresh wrappers, which invalidates every
// link at once — including any profile-formed superblocks.
type bref struct {
	b           *block
	taken, fall *bref
	ind         *bref
	indAddr     uint32

	// Hot-path profile and superblock state (per-VM, dropped with the
	// bref on Reset). On a base bref, heat counts block entries and
	// takenCnt/fallCnt profile the terminating Jcc's edges until a
	// superblock is installed in sb. A superblock's own bref (owner !=
	// nil) carries the per-guard exit chain slots in sbChains and the
	// entry/exit profile that drives invalidation.
	sb        *bref
	owner     *bref
	sbChains  []*bref
	sbInd     []sbIndEntry
	heat      uint32
	takenCnt  uint32
	fallCnt   uint32
	sbEntries uint64
	sbExits   uint64
	sbForms   uint8
	sbTried   bool

	// Tier-2 dispatch slot (superblock brefs only): the compiled closure
	// trace for this superblock, installed once its entry count crosses
	// the tier-2 heat threshold. On a superblock bref, heat counts
	// entries toward that promotion. The trace dies with the bref —
	// Reset, snapshot materialization and profile teardown all demote to
	// tier-1 by construction — and is never serialized; it is recompiled
	// from the persisted superblock when the trace runs hot again.
	t2      *tier2.Trace
	t2Tried bool
}

// sbIndEntry is one return guard's monomorphic inline cache: the last
// off-trace return target it resolved.
type sbIndEntry struct {
	br   *bref
	addr uint32
}

// New creates a VM with an empty address space.
func New(cfg Config) (*VM, error) {
	if cfg.MemSize == 0 {
		cfg.MemSize = DefaultMemSize
	}
	if cfg.MemSize > MaxMemSize {
		return nil, fmt.Errorf("vm: MemSize %d exceeds the 1 GiB sandbox limit", cfg.MemSize)
	}
	if cfg.MemSize%PageSize != 0 {
		return nil, fmt.Errorf("vm: MemSize %d not page-aligned", cfg.MemSize)
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = DefaultStackSize
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = DefaultFuel
	}
	if cfg.StackSize%PageSize != 0 || cfg.StackSize >= cfg.MemSize/2 {
		return nil, fmt.Errorf("vm: bad StackSize %d", cfg.StackSize)
	}
	owner, mem := allocGuestMem(cfg.MemSize)
	v := &VM{
		mem:        mem,
		memOwner:   owner,
		brk:        PageSize,
		dirtyBrk:   PageSize,
		roLimit:    PageSize,
		stackBase:  cfg.MemSize - cfg.StackSize,
		fuel:       cfg.Fuel,
		noCache:    cfg.NoBlockCache,
		noSB:       cfg.NoSuperblocks,
		noT2:       cfg.NoTier2 || envNoTier2(),
		t2Hot:      t2HotThreshold(),
		wallBudget: cfg.WallBudget,
		optCfg:     uop.OptConfig{NoFuse: cfg.NoFusion, NoFlagElide: cfg.NoFlagElision},
		blocks:     make(map[uint32]*bref),
	}
	v.regs[x86.ESP] = cfg.MemSize - 16 // a little headroom at the very top
	return v, nil
}

// MapSegment copies data into the guest address space at addr and extends
// the accessible region to cover [addr, addr+memSize) (memSize >= len(data);
// the tail is the zero-initialized BSS). If readOnly is set, the segment
// is protected against guest writes.
func (v *VM) MapSegment(addr uint32, data []byte, memSize uint32, readOnly bool) error {
	if memSize < uint32(len(data)) {
		return fmt.Errorf("vm: segment memSize %d < filesz %d", memSize, len(data))
	}
	end := addr + memSize
	if end < addr || end > v.stackBase || addr < PageSize {
		return fmt.Errorf("vm: segment [%#x,%#x) outside loadable region", addr, end)
	}
	copy(v.mem[addr:], data)
	if end > v.brk {
		v.brk = end
	}
	if v.brk > v.dirtyBrk {
		v.dirtyBrk = v.brk
	}
	if readOnly && end > v.roLimit {
		v.roLimit = end
	}
	return nil
}

// SetEntry sets the guest program counter.
func (v *VM) SetEntry(entry uint32) { v.eip = entry }

// EIP returns the current guest program counter.
func (v *VM) EIP() uint32 { return v.eip }

// Reg returns a guest register.
func (v *VM) Reg(r x86.Reg) uint32 { return v.regs[r] }

// SetReg sets a guest register.
func (v *VM) SetReg(r x86.Reg, val uint32) { v.regs[r] = val }

// ExitCode returns the status passed to the exit system call.
func (v *VM) ExitCode() int32 { return v.exitCode }

// Stats returns execution counters.
func (v *VM) Stats() Stats { return v.stats }

// Brk returns the current end of the accessible heap region.
func (v *VM) Brk() uint32 { return v.brk }

// FuelRemaining returns the remaining instruction budget.
func (v *VM) FuelRemaining() int64 { return v.fuel }

// MemSize returns the size of the guest address space.
func (v *VM) MemSize() uint32 { return uint32(len(v.mem)) }

// readable reports whether [addr, addr+size) lies inside the sandbox.
func (v *VM) readable(addr, size uint32) bool {
	end := addr + size
	if end < addr {
		return false
	}
	if addr >= PageSize && end <= v.brk {
		return true
	}
	return addr >= v.stackBase && end <= uint32(len(v.mem))
}

// writable reports whether the guest may write [addr, addr+size).
func (v *VM) writable(addr, size uint32) bool {
	return v.readable(addr, size) && (addr >= v.roLimit || addr >= v.stackBase)
}

// ReadMem copies size guest bytes at addr, enforcing the sandbox.
func (v *VM) ReadMem(addr, size uint32) ([]byte, error) {
	if !v.readable(addr, size) {
		return nil, &Trap{Kind: TrapMemory, EIP: v.eip, Addr: addr}
	}
	out := make([]byte, size)
	copy(out, v.mem[addr:addr+size])
	return out, nil
}

// WriteMem copies data into guest memory at addr, enforcing the sandbox
// (including read-only protection).
func (v *VM) WriteMem(addr uint32, data []byte) error {
	if !v.writable(addr, uint32(len(data))) {
		return &Trap{Kind: TrapWrite, EIP: v.eip, Addr: addr}
	}
	copy(v.mem[addr:], data)
	return nil
}

var errExit = errors.New("vm: guest exited")
var errDone = errors.New("vm: guest stream done")

// CanceledError reports that a guest run was stopped by its context:
// the VM observed cancellation at a block boundary and returned without
// completing the stream. The VM's guest state is mid-stream garbage;
// pool it back only through a pristine reset. Unwrap exposes the
// context's error, so errors.Is(err, context.Canceled) (or
// DeadlineExceeded) holds.
type CanceledError struct {
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string {
	if e.Cause != nil {
		return "vm: run canceled: " + e.Cause.Error()
	}
	return "vm: run canceled"
}

// Unwrap exposes the context error.
func (e *CanceledError) Unwrap() error { return e.Cause }

// IsCanceled reports whether err (anywhere in its chain) is a
// *CanceledError — a run stopped by its context rather than by the
// guest.
func IsCanceled(err error) bool {
	var ce *CanceledError
	return errors.As(err, &ce)
}

// WatchdogError reports that the wall-clock watchdog killed a stream:
// the guest exceeded Config.WallBudget of real time regardless of how
// little fuel it burned. Like cancellation, the kill lands at a block
// boundary and leaves mid-stream garbage in the VM — pool it back only
// through a pristine reset.
type WatchdogError struct {
	Budget time.Duration
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("vm: wall-clock watchdog: stream exceeded %v", e.Budget)
}

// IsWatchdog reports whether err (anywhere in its chain) is a
// *WatchdogError.
func IsWatchdog(err error) bool {
	var we *WatchdogError
	return errors.As(err, &we)
}

// cancelQuantum is how many guest instructions may execute between
// cancellation polls: small enough that a canceled stream releases its
// VM within a fraction of a millisecond, large enough that the poll
// (one channel select) is amortized to nothing.
const cancelQuantum = 1 << 16

// Run executes the guest until it invokes exit or done, or faults.
// After StatusDone the VM may be resumed by calling Run again, optionally
// with new Stdin/Stdout, implementing the multi-stream decoder protocol.
//
// Execution is block-at-a-time over translated micro-op fragments:
// direct control transfers follow per-VM chain links from fragment to
// fragment, and only indirect branches (and chain misses) resolve
// through the fragment-cache map.
func (v *VM) Run() (Status, error) {
	return v.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: when ctx is
// cancelable, the executor polls it at block-chain boundaries on a
// fuel-quantum cadence (never on the per-uop hot path) and returns a
// *CanceledError mid-stream. A context that cannot be canceled
// (context.Background()) costs one nil check per block.
func (v *VM) RunContext(ctx context.Context) (Status, error) {
	if done := ctx.Done(); done != nil {
		if err := ctx.Err(); err != nil {
			return StatusExit, &CanceledError{Cause: err}
		}
		v.cancel, v.cancelCause, v.cancelCredit = done, ctx.Err, cancelQuantum
		defer func() { v.cancel, v.cancelCause = nil, nil }()
	}
	// Execute accounting: the run's wall time minus whatever translation
	// it triggered is time spent executing translated code. Two clock
	// reads per Run (a whole stream) — far below the fig7 noise floor.
	start := time.Now()
	translate0 := v.stats.TranslateNS
	defer func() {
		total := uint64(time.Since(start))
		if dt := v.stats.TranslateNS - translate0; total > dt {
			v.stats.ExecuteNS += total - dt
		}
	}()
	br, err := v.lookupBlock(v.eip)
	if err != nil {
		return StatusExit, err
	}
	switch err := v.execUops(br); err {
	case errExit:
		return StatusExit, nil
	case errDone:
		return StatusDone, nil
	default:
		return StatusExit, err
	}
}

// maxBlockLen bounds fragment size, mirroring vx32's fragment granularity.
const maxBlockLen = 64

// lookupBlock returns the translated fragment starting at addr, building
// and caching it on a miss. With NoBlockCache set, every call re-decodes
// and re-lowers a single instruction (the translate-per-step ablation).
func (v *VM) lookupBlock(addr uint32) (*bref, error) {
	v.stats.BlockLookups++
	if !v.noCache {
		if br, ok := v.blocks[addr]; ok {
			return br, nil
		}
	}
	b, err := v.buildBlock(addr)
	if err != nil {
		return nil, err
	}
	br := &bref{b: b}
	if !v.noCache {
		v.blocks[addr] = br
	}
	return br, nil
}

// buildBlock decodes the fragment starting at addr and lowers it to
// micro-ops. Translation time is accumulated in Stats.TranslateNS except
// in the NoBlockCache ablation, where the per-step clock reads would
// distort the very overhead the ablation measures.
func (v *VM) buildBlock(addr uint32) (*block, error) {
	v.stats.BlocksBuilt++
	var t0 time.Time
	if !v.noCache {
		t0 = time.Now()
	}
	b := &block{}
	limit := maxBlockLen
	if v.noCache {
		limit = 1
	}
	cur := addr
	for len(b.insts) < limit {
		// An instruction can be up to 15 bytes; fetching requires the
		// whole window to be readable, clipped at the region end.
		win := uint32(15)
		if !v.readable(cur, 1) {
			return nil, &Trap{Kind: TrapMemory, EIP: cur, Addr: cur, Msg: "instruction fetch"}
		}
		for win > 1 && !v.readable(cur, win) {
			win--
		}
		inst, err := x86.Decode(v.mem[cur : cur+win])
		if err != nil {
			return nil, &Trap{Kind: TrapIllegal, EIP: cur, Msg: err.Error()}
		}
		b.insts = append(b.insts, inst)
		b.addrs = append(b.addrs, cur)
		cur += uint32(inst.Len)
		if endsBlock(inst.Op) {
			break
		}
	}
	b.end = cur
	b.uops = uop.Lower(b.insts, b.addrs)
	b.cost = int64(len(b.insts))
	if !v.noCache {
		// The optimizer runs only on cached fragments: the translate-
		// per-step ablation measures raw translation overhead, and a
		// one-instruction fragment has nothing to fuse or analyze.
		var ost uop.OptStats
		b.uops, ost = uop.Optimize(b.uops, v.optCfg)
		v.stats.UopsFused += ost.UopsFused
		v.stats.FlagsElided += ost.FlagsElided
		v.stats.TranslateNS += uint64(time.Since(t0))
	}
	return b, nil
}

// endsBlock reports whether op terminates a fragment (control transfer or
// a system-call gate, after which the host may need control).
func endsBlock(op x86.Op) bool {
	switch op {
	case x86.CALL, x86.CALLM, x86.RET, x86.JMP, x86.JMPM, x86.JCC,
		x86.INT, x86.HLT, x86.UD2:
		return true
	}
	return false
}

// execBlock runs a fragment on the reference (eager-flag, per-instruction
// fuel) engine. It is the end-of-fuel slow path of execUops: walking the
// final instructions one at a time preserves the exact trap EIP that
// per-block fuel accounting gives up. Flags must be materialized before
// entry.
func (v *VM) execBlock(b *block) error {
	for i := range b.insts {
		if v.fuel <= 0 {
			return &Trap{Kind: TrapFuel, EIP: b.addrs[i]}
		}
		v.fuel--
		v.stats.Steps++
		if err := v.exec(&b.insts[i], b.addrs[i]); err != nil {
			return err
		}
	}
	return nil
}
