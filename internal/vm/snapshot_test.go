package vm

import (
	"bytes"
	"testing"

	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

// counterProgram is a multi-stream guest with observable state: each
// stream writes the 4-byte counter to stdout, increments it, and signals
// done. Without a reset, successive streams see 0, 1, 2, ...
func counterProgram(u *asm.Unit) {
	u.DefBSS("ctr", 4, 4)
	u.Label("start")
	u.Label("loop")
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysWrite))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(1))
	u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("ctr"))
	u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(4))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("ctr"))
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.ECX, 0))
	u.Op1(x86.INC, x86.R(x86.EAX))
	u.Op2(x86.MOV, x86.M(x86.ECX, 0), x86.R(x86.EAX))
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysDone))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	u.Jmp("loop")
}

func runStream(t *testing.T, v *VM) []byte {
	t.Helper()
	var out bytes.Buffer
	v.Stdout = &out
	if st, err := v.Run(); err != nil || st != StatusDone {
		t.Fatalf("run: st=%v err=%v", st, err)
	}
	return out.Bytes()
}

func counterValue(t *testing.T, out []byte) uint32 {
	t.Helper()
	if len(out) != 4 {
		t.Fatalf("stream wrote %d bytes, want 4", len(out))
	}
	return uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24
}

// TestSnapshotReset: a reset rewinds guest memory, registers and bounds
// to the captured image, erasing everything later streams did.
func TestSnapshotReset(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, counterProgram)
	snap := v.Snapshot()

	if got := counterValue(t, runStream(t, v)); got != 0 {
		t.Fatalf("stream 1 counter = %d, want 0", got)
	}
	if got := counterValue(t, runStream(t, v)); got != 1 {
		t.Fatalf("stream 2 counter = %d, want 1 (no reset)", got)
	}

	if err := v.Reset(snap); err != nil {
		t.Fatal(err)
	}
	if v.Stdin != nil || v.Stdout != nil || v.Stderr != nil {
		t.Fatal("reset must detach the I/O streams")
	}
	if got := counterValue(t, runStream(t, v)); got != 0 {
		t.Fatalf("post-reset counter = %d, want 0 (state leaked)", got)
	}
	if v.EIP() == snap.eip {
		// The VM is parked after the done gate; only right after Reset
		// should it sit at the snapshot entry again.
		t.Fatal("expected the VM to have advanced past the entry point")
	}
}

// TestSnapshotRestoresBounds: heap growth (setperm) is rolled back.
func TestSnapshotRestoresBounds(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysSetPerm))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(PageSize))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(1<<20))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysDone))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	})
	snap := v.Snapshot()
	brk0 := v.Brk()
	v.Stdout = &bytes.Buffer{}
	if st, err := v.Run(); err != nil || st != StatusDone {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if v.Brk() <= brk0 {
		t.Fatalf("setperm did not grow the heap (brk=%#x)", v.Brk())
	}
	if err := v.Reset(snap); err != nil {
		t.Fatal(err)
	}
	if v.Brk() != brk0 {
		t.Fatalf("post-reset brk = %#x, want %#x", v.Brk(), brk0)
	}
}

// heapProbeProgram grows the heap by 1 MiB, writes the probe byte (well
// above the program image) to stdout, then dirties it, once per stream.
func heapProbeProgram(u *asm.Unit) {
	const probe = 0x90000
	u.Label("start")
	u.Label("loop")
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysSetPerm))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(PageSize))
	u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(1<<20))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysWrite))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(1))
	u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(probe))
	u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(1))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(probe))
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(0xAB))
	u.Op2(x86.MOV, x86.M(x86.ECX, 0), x86.R(x86.EAX))
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysDone))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	u.Jmp("loop")
}

// TestSetPermZeroesReusedHeap: heap bytes a previous stream dirtied must
// read zero after Reset rolls brk back and setperm re-exposes them. This
// pins the dirty-high-water-mark fast path: pristine pages are exposed
// without clearing, but anything below the mark is scrubbed.
func TestSetPermZeroesReusedHeap(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, heapProbeProgram)
	snap := v.Snapshot()

	if got := runStream(t, v); len(got) != 1 || got[0] != 0 {
		t.Fatalf("fresh heap probe = %#v, want [0]", got)
	}
	// Without a reset the heap persists: the second setperm finds the
	// region already accessible and the dirtied byte survives.
	if got := runStream(t, v); len(got) != 1 || got[0] != 0xAB {
		t.Fatalf("no-reset probe = %#v, want [0xAB]", got)
	}
	if err := v.Reset(snap); err != nil {
		t.Fatal(err)
	}
	if got := runStream(t, v); len(got) != 1 || got[0] != 0 {
		t.Fatalf("post-reset probe = %#v, want [0] (dirty heap leaked through setperm)", got)
	}
	// A sibling materialized from the same snapshot starts pristine and
	// exposes the pure skip path (nothing below its mark to scrub).
	v2 := snap.NewVM()
	if got := runStream(t, v2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("sibling VM probe = %#v, want [0]", got)
	}
}

// TestSnapshotNewVM: VMs materialized from one snapshot are independent.
func TestSnapshotNewVM(t *testing.T) {
	v1, _ := buildVM(t, Config{}, nil, counterProgram)
	snap := v1.Snapshot()

	runStream(t, v1)
	runStream(t, v1) // v1's counter is now 2

	v2 := snap.NewVM()
	if got := counterValue(t, runStream(t, v2)); got != 0 {
		t.Fatalf("fresh-from-snapshot counter = %d, want 0", got)
	}
	if got := counterValue(t, runStream(t, v1)); got != 2 {
		t.Fatalf("original VM counter = %d, want 2 (snapshot VMs must not alias)", got)
	}
}

// TestAbsorbBlocks: read-only-text fragments decoded by one VM warm the
// snapshot, so later VMs start with a populated translation cache.
func TestAbsorbBlocks(t *testing.T) {
	v1, _ := buildVM(t, Config{}, nil, counterProgram)
	snap := v1.Snapshot()
	if snap.BlockCount() != 0 {
		t.Fatalf("pristine snapshot has %d blocks", snap.BlockCount())
	}
	runStream(t, v1)
	snap.AbsorbBlocks(v1)
	if snap.BlockCount() == 0 {
		t.Fatal("AbsorbBlocks picked up nothing from a warmed-up VM")
	}

	v2 := snap.NewVM()
	runStream(t, v2)
	if built := v2.Stats().BlocksBuilt; built != 0 {
		t.Fatalf("warm-cache VM built %d blocks, want 0", built)
	}
}

// TestSetFuel: the budget is absolute, not additive.
func TestSetFuel(t *testing.T) {
	v, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	v.SetFuel(7)
	v.SetFuel(7)
	if v.FuelRemaining() != 7 {
		t.Fatalf("fuel = %d, want 7 (SetFuel must not accumulate)", v.FuelRemaining())
	}
	v.SetFuel(10)
	v.SetFuel(7)
	if v.FuelRemaining() != 7 {
		t.Fatalf("fuel = %d, want 7 (SetFuel is absolute)", v.FuelRemaining())
	}
}

// TestSnapshotInvalidatesChains: block chaining is per-VM state. After a
// Reset every chained successor link must be dropped, and VMs
// materialized from one snapshot must chain independently — the shared
// decoded blocks themselves stay common.
func TestSnapshotInvalidatesChains(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, counterProgram)
	snap := v.Snapshot()
	runStream(t, v)
	snap.AbsorbBlocks(v)

	if chained := v.Stats().BlocksChained; chained == 0 {
		t.Fatal("running the counter program installed no chain links")
	}
	for _, br := range v.blocks {
		if br.taken != nil || br.fall != nil || br.ind != nil {
			// Found at least one link; verify Reset drops them all.
			if err := v.Reset(snap); err != nil {
				t.Fatal(err)
			}
			for addr, nbr := range v.blocks {
				if nbr.taken != nil || nbr.fall != nil || nbr.ind != nil {
					t.Fatalf("block %#x kept a chain link across Reset", addr)
				}
			}
			// And the VM still runs correctly from the invalidated state.
			if got := counterValue(t, runStream(t, v)); got != 0 {
				t.Fatalf("post-reset counter = %d, want 0", got)
			}
			return
		}
	}
	t.Fatal("no chain links found on any cached block")
}

// TestSnapshotSharedUopCacheRace: many VMs materialized from one warmed
// snapshot run concurrently, each building its own chain links over the
// shared immutable uop arrays. Run with -race this pins the sharing
// contract: blocks are read-only, chains are per-VM.
func TestSnapshotSharedUopCacheRace(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, counterProgram)
	snap := v.Snapshot()
	runStream(t, v)
	snap.AbsorbBlocks(v)

	const vms = 8
	done := make(chan error, vms)
	for i := 0; i < vms; i++ {
		go func() {
			w := snap.NewVM()
			for s := 0; s < 4; s++ {
				var out bytes.Buffer
				w.Stdout = &out
				if st, err := w.Run(); err != nil || st != StatusDone {
					done <- err
					return
				}
				if got := uint32(out.Bytes()[0]); got != uint32(s) {
					done <- &Trap{Msg: "bad counter"}
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < vms; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFuelBudgetEnforced: a looping guest with a tiny absolute budget
// stops with a fuel trap.
func TestFuelBudgetEnforced(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Label("spin")
		u.Jmp("spin")
	})
	v.SetFuel(100)
	_, err := v.Run()
	if k, ok := trapKind(err); !ok || k != TrapFuel {
		t.Fatalf("err = %v, want fuel trap", err)
	}
}

// TestResetSizeMismatch: restoring across address-space sizes is refused.
func TestResetSizeMismatch(t *testing.T) {
	small, err := New(Config{MemSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(Config{MemSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Reset(small.Snapshot()); err == nil {
		t.Fatal("reset across memory sizes must fail")
	}
}
