package uop

import "math/bits"

// FlagOp says how the current EFLAGS contents are represented. FlagNone
// means the flags are materialized (the VM's eager cf/zf/sf/of/pf bools
// are authoritative); every other value means the Flags record below
// holds the deferred inputs of the last flag-writing operation and the
// individual bits are computed on demand.
//
// The operand width and carry-in use are encoded in the op itself (the
// *8 variants are the byte-width forms, FlagAdc/FlagSbb the carry-
// consuming forms) so the recording side writes only the fields its
// operation actually uses: a logic op stores two words, an add three.
type FlagOp uint8

// Flag representation states. The byte-width group must stay contiguous
// at the end: is8 tests Op >= FlagAdd8.
const (
	FlagNone    FlagOp = iota // flags are materialized in the VM's bools
	FlagSZP                   // SF/ZF/PF from Res; CF/OF already eager (MUL)
	FlagAdd                   // Res = A + B
	FlagAdc                   // Res = A + B + Cin
	FlagSub                   // Res = A - B
	FlagSbb                   // Res = A - B - Cin
	FlagAddKeep               // like FlagAdd with B = 1, CF preserved in KeptCF (INC)
	FlagSubKeep               // like FlagSub with B = 1, CF preserved in KeptCF (DEC)
	FlagLogic                 // Res = A op B; CF = OF = 0
	FlagShl                   // Res = A << B, B in 1..31
	FlagShr                   // Res = A >> B logical, B in 1..31
	FlagSar                   // Res = A >> B arithmetic, B in 1..31

	FlagAdd8 // byte-width forms of the above; A, B, Res are masked to 8 bits
	FlagAdc8
	FlagSub8
	FlagSbb8
	FlagLogic8
)

// Flags is the deferred-flags record: the operands and result of the
// last flag-writing operation, from which any EFLAGS bit can be
// reconstructed. Writers only set the fields their FlagOp reads: A and B
// must be pre-masked to the op's width, Res is the masked result, Cin is
// the carry/borrow-in of FlagAdc/FlagSbb (and their byte forms), KeptCF
// the carried-over CF of the INC/DEC ops that preserve it. The shift ops
// are recorded only at 32-bit width with a count in 1..31; other shapes
// take the eager path.
type Flags struct {
	Op     FlagOp
	KeptCF bool
	A, B   uint32
	Cin    uint32
	Res    uint32
}

func (f *Flags) is8() bool { return f.Op >= FlagAdd8 }

func (f *Flags) sign() uint32 {
	if f.is8() {
		return 0x80
	}
	return 0x80000000
}

// CF computes the carry flag from the record. Valid for Op != FlagNone
// and Op != FlagSZP (those keep CF in the VM's eager bool).
func (f *Flags) CF() bool {
	switch f.Op {
	case FlagAdd:
		return uint64(f.A)+uint64(f.B) > 0xFFFFFFFF
	case FlagAdc:
		return uint64(f.A)+uint64(f.B)+uint64(f.Cin) > 0xFFFFFFFF
	case FlagSub:
		return f.A < f.B
	case FlagSbb:
		return uint64(f.A) < uint64(f.B)+uint64(f.Cin)
	case FlagAddKeep, FlagSubKeep:
		return f.KeptCF
	case FlagLogic, FlagLogic8:
		return false
	case FlagShl:
		return f.A&(1<<(32-f.B)) != 0
	case FlagShr:
		return f.A&(1<<(f.B-1)) != 0
	case FlagSar:
		return uint32(int32(f.A)>>(f.B-1))&1 != 0
	case FlagAdd8:
		return f.A+f.B > 0xFF
	case FlagAdc8:
		return f.A+f.B+f.Cin > 0xFF
	case FlagSub8:
		return f.A < f.B
	case FlagSbb8:
		return f.A < f.B+f.Cin
	}
	return false
}

// OF computes the overflow flag from the record.
func (f *Flags) OF() bool {
	switch f.Op {
	case FlagAdd, FlagAdc, FlagAddKeep, FlagAdd8, FlagAdc8:
		return (^(f.A ^ f.B) & (f.A ^ f.Res) & f.sign()) != 0
	case FlagSub, FlagSbb, FlagSubKeep, FlagSub8, FlagSbb8:
		return ((f.A ^ f.B) & (f.A ^ f.Res) & f.sign()) != 0
	case FlagShl:
		return ((f.Res & 0x80000000) != 0) != f.CF()
	case FlagShr:
		return f.A&0x80000000 != 0
	}
	return false // logic ops, FlagSar
}

// ZF computes the zero flag; writers store Res pre-masked.
func (f *Flags) ZF() bool { return f.Res == 0 }

// SF computes the sign flag: the result's top bit at its width.
func (f *Flags) SF() bool { return f.Res&f.sign() != 0 }

// PF computes the parity flag: even parity of the low result byte.
func (f *Flags) PF() bool { return bits.OnesCount8(uint8(f.Res))%2 == 0 }
