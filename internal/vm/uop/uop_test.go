package uop

import (
	"math/rand"
	"testing"

	"vxa/internal/x86"
)

// TestLowerOneToOne pins the invariant the VM's per-block fuel
// accounting depends on: lowering is 1:1, micro-op i describes
// instruction i, with EIP/Next taken from the address table.
func TestLowerOneToOne(t *testing.T) {
	insts := []x86.Inst{
		{Op: x86.MOV, Dst: x86.R(x86.EAX), Src: x86.I(7), Len: 5},
		{Op: x86.ADD, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX), Len: 2},
		{Op: x86.JCC, CC: x86.CCNE, Rel: -9, Len: 2},
	}
	addrs := []uint32{0x1000, 0x1005, 0x1007}
	us := Lower(insts, addrs)
	if len(us) != len(insts) {
		t.Fatalf("lowered %d uops for %d insts", len(us), len(insts))
	}
	for i := range us {
		if us[i].EIP != addrs[i] {
			t.Errorf("uop %d: EIP %#x, want %#x", i, us[i].EIP, addrs[i])
		}
		if want := addrs[i] + uint32(insts[i].Len); us[i].Next != want {
			t.Errorf("uop %d: Next %#x, want %#x", i, us[i].Next, want)
		}
	}
	if us[0].Kind != KindMovRI || us[0].Imm != 7 {
		t.Errorf("mov lowered to %d imm %d", us[0].Kind, us[0].Imm)
	}
	if us[1].Kind != KindAddRR {
		t.Errorf("add reg,reg lowered to kind %d, want KindAddRR", us[1].Kind)
	}
	if us[2].Kind != KindJcc || us[2].Target != 0x1000 {
		t.Errorf("jcc lowered to kind %d target %#x, want KindJcc -> 0x1000", us[2].Kind, us[2].Target)
	}
}

// TestLowerTotal: every opcode/operand shape lowers to something — an
// unspecialized shape must carry its instruction into the generic
// escape rather than produce a zero-value micro-op that silently
// executes as a NOP.
func TestLowerTotal(t *testing.T) {
	odd := []x86.Inst{
		{Op: x86.ROL, Dst: x86.R(x86.EAX), Src: x86.I8(3), Len: 3},          // rotate: generic
		{Op: x86.INC, Dst: x86.M8(x86.EAX, 0), Len: 2},                      // byte-mem inc: generic
		{Op: x86.SHL, Dst: x86.M(x86.EBX, 4), Src: x86.I8(1), Len: 4},       // mem shift: generic
		{Op: x86.XCHG, Dst: x86.M(x86.ESI, 0), Src: x86.R(x86.ECX), Len: 2}, // mem xchg: generic
		{Op: x86.MOVSB, Rep: true, Len: 2},                                  // string op escape
	}
	addrs := make([]uint32, len(odd))
	for i := range addrs {
		addrs[i] = uint32(0x2000 + 4*i)
	}
	us := Lower(odd, addrs)
	for i, u := range us {
		if u.Kind != KindGeneric && u.Kind != KindString {
			t.Errorf("inst %d (%v) lowered to kind %d, want an escape", i, odd[i].Op, u.Kind)
		}
		if u.Inst == nil {
			t.Errorf("inst %d (%v): escape lost its instruction payload", i, odd[i].Op)
		}
	}
}

// TestFlagsReference checks every lazy flag formula against a widened
// brute-force model over randomized operands, both widths.
func TestFlagsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		a, b := rng.Uint32(), rng.Uint32()
		cin := uint32(rng.Intn(2))

		// 32-bit add with carry-in.
		res := a + b + cin
		f := Flags{Op: FlagAdc, A: a, B: b, Cin: cin, Res: res}
		if got, want := f.CF(), uint64(a)+uint64(b)+uint64(cin) > 0xFFFFFFFF; got != want {
			t.Fatalf("adc CF(%#x,%#x,%d) = %v, want %v", a, b, cin, got, want)
		}
		if got, want := f.OF(), int64(int32(a))+int64(int32(b))+int64(cin) != int64(int32(res)); got != want {
			t.Fatalf("adc OF(%#x,%#x,%d) = %v, want %v", a, b, cin, got, want)
		}
		if f.ZF() != (res == 0) || f.SF() != (int32(res) < 0) {
			t.Fatalf("adc SZ(%#x,%#x,%d) wrong", a, b, cin)
		}

		// 32-bit subtract with borrow-in.
		res = a - b - cin
		f = Flags{Op: FlagSbb, A: a, B: b, Cin: cin, Res: res}
		if got, want := f.CF(), uint64(a) < uint64(b)+uint64(cin); got != want {
			t.Fatalf("sbb CF(%#x,%#x,%d) = %v, want %v", a, b, cin, got, want)
		}
		if got, want := f.OF(), int64(int32(a))-int64(int32(b))-int64(cin) != int64(int32(res)); got != want {
			t.Fatalf("sbb OF(%#x,%#x,%d) = %v, want %v", a, b, cin, got, want)
		}

		// Byte width.
		a8, b8 := a&0xFF, b&0xFF
		res = (a8 + b8 + cin) & 0xFF
		f = Flags{Op: FlagAdc8, A: a8, B: b8, Cin: cin, Res: res}
		if got, want := f.CF(), a8+b8+cin > 0xFF; got != want {
			t.Fatalf("adc8 CF(%#x,%#x,%d) = %v, want %v", a8, b8, cin, got, want)
		}
		if got, want := f.OF(), int16(int8(a8))+int16(int8(b8))+int16(cin) != int16(int8(res)); got != want {
			t.Fatalf("adc8 OF(%#x,%#x,%d) = %v, want %v", a8, b8, cin, got, want)
		}
		if f.SF() != (int8(res) < 0) || f.ZF() != (res == 0) {
			t.Fatalf("adc8 SZ(%#x,%#x,%d) wrong", a8, b8, cin)
		}

		// Shifts, count 1..31 at 32-bit width.
		count := uint32(1 + rng.Intn(31))
		res = a << count
		f = Flags{Op: FlagShl, A: a, B: count, Res: res}
		if got, want := f.CF(), (a>>(32-count))&1 != 0; got != want {
			t.Fatalf("shl CF(%#x,%d) = %v, want %v", a, count, got, want)
		}
		res = a >> count
		f = Flags{Op: FlagShr, A: a, B: count, Res: res}
		if got, want := f.CF(), (a>>(count-1))&1 != 0; got != want {
			t.Fatalf("shr CF(%#x,%d) = %v, want %v", a, count, got, want)
		}
		if got, want := f.OF(), int32(a) < 0; got != want {
			t.Fatalf("shr OF(%#x,%d) = %v, want %v", a, count, got, want)
		}
	}
}

// TestKindNames pins the name table against the const block: the last
// declared kind must be the last name, so an added or reordered kind
// without a matching table entry fails here rather than printing the
// wrong mnemonic in trace-plan dumps.
func TestKindNames(t *testing.T) {
	if got := KindGeneric.String(); got != "Generic" {
		t.Fatalf("KindGeneric.String() = %q", got)
	}
	if got := len(kindNames); got != int(KindGeneric)+1 {
		t.Fatalf("kindNames has %d entries, want %d", got, int(KindGeneric)+1)
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Fatalf("out-of-range Kind string = %q", got)
	}
}
