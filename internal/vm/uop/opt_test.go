package uop

import (
	"testing"

	"vxa/internal/x86"
)

// lowerSeq lowers a hand-built instruction sequence at address 0x1000.
func lowerSeq(t *testing.T, insts []x86.Inst) []Uop {
	t.Helper()
	addrs := make([]uint32, len(insts))
	addr := uint32(0x1000)
	for i := range insts {
		if insts[i].Len == 0 {
			insts[i].Len = 4 // synthetic; only Next/cost bookkeeping sees it
		}
		addrs[i] = addr
		addr += uint32(insts[i].Len)
	}
	return Lower(insts, addrs)
}

// TestFuseCmpJcc pins the compare/branch terminator fusion and the cost
// invariant.
func TestFuseCmpJcc(t *testing.T) {
	us := lowerSeq(t, []x86.Inst{
		{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)},
		{Op: x86.JCC, CC: x86.CCL, Rel: 16},
	})
	before := Cost(us)
	out, st := Optimize(us, OptConfig{})
	if len(out) != 1 || out[0].Kind != KindCmpJccRR {
		t.Fatalf("want one KindCmpJccRR, got %+v", out)
	}
	if out[0].Sub != uint8(x86.CCL) || out[0].Cost != 2 {
		t.Fatalf("bad fused op: %+v", out[0])
	}
	if st.UopsFused != 1 {
		t.Fatalf("UopsFused = %d, want 1", st.UopsFused)
	}
	if Cost(out) != before {
		t.Fatalf("cost changed: %d -> %d", before, Cost(out))
	}
}

// TestFuseBoolTriple pins the cmp;setcc;movzx boolean idiom collapsing
// to one micro-op.
func TestFuseBoolTriple(t *testing.T) {
	us := lowerSeq(t, []x86.Inst{
		{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)},
		{Op: x86.SETCC, CC: x86.CCB, Dst: x86.R8(x86.EAX)},
		{Op: x86.MOVZX, Dst: x86.R(x86.EAX), Src: x86.R8(x86.EAX)},
	})
	out, _ := Optimize(us, OptConfig{})
	if len(out) != 1 || out[0].Kind != KindCmpBoolRR {
		t.Fatalf("want one KindCmpBoolRR, got %+v", out)
	}
	if out[0].Cost != 3 {
		t.Fatalf("cost = %d, want 3", out[0].Cost)
	}
}

// TestFuseMovPopAlu pins the compiler's binary-operation tail
// (mov ecx,eax; pop eax; add eax,ecx) fusing into one micro-op.
func TestFuseMovPopAlu(t *testing.T) {
	us := lowerSeq(t, []x86.Inst{
		{Op: x86.MOV, Dst: x86.R(x86.ECX), Src: x86.R(x86.EAX)},
		{Op: x86.POP, Dst: x86.R(x86.EAX)},
		{Op: x86.ADD, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)},
	})
	out, _ := Optimize(us, OptConfig{})
	if len(out) != 1 || out[0].Kind != KindMovPopAluRR {
		t.Fatalf("want one KindMovPopAluRR, got %+v", out)
	}
	if out[0].Cost != 3 || AluOp(out[0].Sub) != AluAdd {
		t.Fatalf("bad fused op: %+v", out[0])
	}

	// The aliased shape mov rB,rA ; pop rB ; op rB,rB must NOT take the
	// triple: the pop overwrites the moved value, so the ALU reads the
	// popped word on both operands. Only the mov/pop pair fuses.
	us = lowerSeq(t, []x86.Inst{
		{Op: x86.MOV, Dst: x86.R(x86.EBX), Src: x86.R(x86.EAX)},
		{Op: x86.POP, Dst: x86.R(x86.EBX)},
		{Op: x86.ADD, Dst: x86.R(x86.EBX), Src: x86.R(x86.EBX)},
	})
	out, _ = Optimize(us, OptConfig{})
	if len(out) != 2 || out[0].Kind != KindMovPop {
		t.Fatalf("aliased triple must fuse only the pair: %+v", out)
	}
}

// TestElideDeadFlags pins dead-flag elimination: a flag-writing op
// whose record is clobbered before any consumer loses it; the last
// writer before the block exit keeps it.
func TestElideDeadFlags(t *testing.T) {
	us := lowerSeq(t, []x86.Inst{
		{Op: x86.ADD, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)}, // dead: xor clobbers
		{Op: x86.XOR, Dst: x86.R(x86.EDX), Src: x86.R(x86.EDX)}, // live at exit
	})
	out, st := Optimize(us, OptConfig{NoFuse: true})
	if st.FlagsElided != 1 {
		t.Fatalf("FlagsElided = %d, want 1", st.FlagsElided)
	}
	if out[0].Kind != KindAddRRNF || out[1].Kind != KindXorRR {
		t.Fatalf("bad kinds: %v %v", out[0].Kind, out[1].Kind)
	}
}

// TestElideRespectsConsumers pins the other side: ADC reads CF, a Jcc
// reads its condition flags, and an INC whose record survives must keep
// reading the preserved CF.
func TestElideRespectsConsumers(t *testing.T) {
	us := lowerSeq(t, []x86.Inst{
		{Op: x86.ADD, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)}, // CF feeds ADC
		{Op: x86.ADC, Dst: x86.R(x86.EDX), Src: x86.R(x86.EBX)},
	})
	out, st := Optimize(us, OptConfig{NoFuse: true})
	if st.FlagsElided != 0 {
		t.Fatalf("FlagsElided = %d, want 0", st.FlagsElided)
	}
	if out[0].Kind != KindAddRR {
		t.Fatalf("ADD lost its record: %v", out[0].Kind)
	}

	// A dead CMP becomes a NOP but keeps its fuel cost.
	us = lowerSeq(t, []x86.Inst{
		{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)},
		{Op: x86.SUB, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)},
	})
	out, st = Optimize(us, OptConfig{NoFuse: true})
	if st.FlagsElided != 1 || out[0].Kind != KindNop || out[0].Cost != 1 {
		t.Fatalf("dead CMP not elided to a costed NOP: %+v (elided %d)", out[0], st.FlagsElided)
	}
}

// TestOptDisabled pins the ablation knobs: with both passes off the
// lowering is returned untouched.
func TestOptDisabled(t *testing.T) {
	us := lowerSeq(t, []x86.Inst{
		{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)},
		{Op: x86.JCC, CC: x86.CCE, Rel: 4},
	})
	out, st := Optimize(us, OptConfig{NoFuse: true, NoFlagElide: true})
	if len(out) != 2 || st.UopsFused != 0 || st.FlagsElided != 0 {
		t.Fatalf("disabled optimizer still changed the fragment: %+v %+v", out, st)
	}
	if out[0].Kind != KindCmpRR || out[1].Kind != KindJcc {
		t.Fatalf("bad kinds: %v %v", out[0].Kind, out[1].Kind)
	}
}
