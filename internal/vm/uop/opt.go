package uop

import "vxa/internal/x86"

// This file is the translation-time optimizer: a pass pipeline run over
// a lowered fragment (or a superblock assembled from several fragments)
// before it enters the execution cache.
//
//   1. Fusion (peephole): adjacent guest instructions that form one
//      logical operation collapse into one micro-op. The targets are
//      the compiler idioms that dominate VXA decoder code — cmp/test
//      followed by a conditional branch (or a superblock guard), the
//      cmp/test;setcc;movzx boolean-materialization triple, and
//      mov reg,[mem] feeding a register ALU op. Fused compare forms
//      evaluate their condition directly from the operands, so the
//      branch never pays the lazy-flag materialization dance.
//   2. Dead-flag elimination (backward liveness): a lazy-flag record is
//      only worth writing if some later instruction can observe it.
//      Walking the fragment backward with a conservative all-live seed
//      at the exit, every flag-writing micro-op whose flags are
//      provably dead before the next full clobber is downgraded to its
//      flag-suppressed (NF) form — or, for pure flag-writers like a
//      dead CMP, to a NOP.
//
// Both passes preserve the fragment's total guest-instruction count
// (the sum of Cost fields), which is what the VM's fuel accounting
// charges; they also preserve every trap's EIP. One semantic point is
// deliberately relaxed: after a fault mid-fragment, the arithmetic
// flags may not reflect the faulting instruction's predecessors (a
// trapped stream is dead — the VM reports it undecodable and nothing
// resumes it). Architecturally observable flag state — conditions,
// SETcc, ADC/SBB carries, syscall and exit boundaries, and the
// deliberate HLT/UD2 trap points — is always exact.

// OptConfig selects optimizer passes; the zero value enables
// everything. The disable knobs exist for the per-pass ablation
// benchmarks and the differential test wall.
type OptConfig struct {
	NoFuse      bool // disable instruction fusion
	NoFlagElide bool // disable dead-flag elimination
}

// OptStats counts what one Optimize call did.
type OptStats struct {
	UopsFused   uint64 // fused micro-ops created (each replaces 2-3 uops)
	FlagsElided uint64 // flag records removed by the liveness pass
}

// Optimize runs the pass pipeline over a lowered fragment and returns
// the (possibly shorter) optimized micro-op slice. The input slice is
// consumed: it may be mutated and reused as backing for the result.
func Optimize(us []Uop, cfg OptConfig) ([]Uop, OptStats) {
	var st OptStats
	if !cfg.NoFuse {
		us, st.UopsFused = fuse(us)
	}
	if !cfg.NoFlagElide {
		st.FlagsElided = elideDeadFlags(us)
	}
	return us, st
}

// cmpJccKinds maps a compare kind to its fused compare/branch form;
// cmpGuardKinds and cmpSetccKinds likewise for guards and setcc.
var cmpJccKinds = map[Kind]Kind{
	KindCmpRR: KindCmpJccRR, KindCmpRI: KindCmpJccRI,
	KindTestRR: KindTestJccRR, KindTestRI: KindTestJccRI,
}

var cmpGuardKinds = map[Kind]Kind{
	KindCmpRR: KindGuardCmpRR, KindCmpRI: KindGuardCmpRI,
	KindTestRR: KindGuardTestRR, KindTestRI: KindGuardTestRI,
}

var cmpSetccKinds = map[Kind]Kind{
	KindCmpRR: KindCmpSetccRR, KindCmpRI: KindCmpSetccRI,
	KindTestRR: KindTestSetccRR, KindTestRI: KindTestSetccRI,
}

var setccBoolKinds = map[Kind]Kind{
	KindCmpSetccRR: KindCmpBoolRR, KindCmpSetccRI: KindCmpBoolRI,
	KindTestSetccRR: KindTestBoolRR, KindTestSetccRI: KindTestBoolRI,
}

// loadAluOps maps the specialized 32-bit reg/reg ALU kinds eligible for
// load-op fusion onto their AluOp selector. ADC/SBB are excluded: their
// carry-in read would survive flag elision and complicate the NF form.
var loadAluOps = map[Kind]AluOp{
	KindAddRR: AluAdd, KindSubRR: AluSub, KindCmpRR: AluCmp,
	KindAndRR: AluAnd, KindOrRR: AluOr, KindXorRR: AluXor, KindTestRR: AluTest,
}

// fuse is the peephole pass: one left-to-right scan collapsing adjacent
// fusable pairs (and the setcc;movzx triple) in place.
func fuse(us []Uop) ([]Uop, uint64) {
	out := us[:0]
	var fused uint64
	n := len(us)
	for i := 0; i < n; {
		u := us[i]
		if f, consumed := fuseAt(us, i); consumed > 1 {
			out = append(out, f)
			fused++
			i += consumed
			continue
		}
		out = append(out, u)
		i++
	}
	return out, fused
}

// fuseAt tries to fuse the micro-ops starting at index i, returning the
// fused op and how many inputs it consumed (0 means no fusion).
func fuseAt(us []Uop, i int) (Uop, int) {
	u := &us[i]
	if i+1 >= len(us) {
		return Uop{}, 0
	}
	next := &us[i+1]

	switch u.Kind {
	case KindCmpRR, KindCmpRI, KindTestRR, KindTestRI:
		switch next.Kind {
		case KindJcc:
			f := *u
			f.Kind = cmpJccKinds[u.Kind]
			f.Sub, f.Target, f.Next = next.Sub, next.Target, next.Next
			f.Cost = u.Cost + next.Cost
			return f, 2
		case KindGuard:
			f := *u
			f.Kind = cmpGuardKinds[u.Kind]
			f.Sub, f.Target, f.Next = next.Sub, next.Target, next.Next
			f.Cost = u.Cost + next.Cost
			return f, 2
		case KindSetccR8:
			// Compare operands move to Src/Aux (or Src/Imm); the setcc
			// destination byte slot takes Dst/Dsh.
			f := Uop{
				Kind: cmpSetccKinds[u.Kind], Sub: next.Sub,
				Src: u.Dst, Aux: u.Src, Imm: u.Imm,
				Dst: next.Dst, Dsh: next.Dsh,
				EIP: u.EIP, Next: next.Next, Cost: u.Cost + next.Cost,
			}
			// The full boolean idiom: setcc r8 ; movzx r32, r8 with the
			// same storage register zero-extends the condition into the
			// whole register, subsuming the byte write.
			if i+2 < len(us) {
				m := &us[i+2]
				if m.Kind == KindMovzxRR8 && m.Src == f.Dst && m.Ssh == f.Dsh &&
					m.Dst == f.Dst && f.Dsh == 0 {
					f.Kind = setccBoolKinds[f.Kind]
					f.Next = m.Next
					f.Cost += m.Cost
					return f, 3
				}
			}
			return f, 2
		}

	case KindLoad:
		switch next.Kind {
		case KindPushR:
			// mov Aux, [ea] ; push Src (usually the loaded register).
			f := *u
			f.Kind, f.Aux, f.Src = KindLoadPush, u.Dst, next.Src
			f.Imm = next.EIP
			f.Next, f.Cost = next.Next, u.Cost+next.Cost
			return f, 2
		}
		op, ok := loadAluOps[next.Kind]
		if !ok {
			return Uop{}, 0
		}
		// Leave a compare for a later cmp/branch or cmp/setcc fusion:
		// evaluating the condition straight from the operands beats
		// saving one load dispatch.
		if (next.Kind == KindCmpRR || next.Kind == KindTestRR) && i+2 < len(us) {
			switch us[i+2].Kind {
			case KindJcc, KindGuard, KindSetccR8:
				return Uop{}, 0
			}
		}
		f := *u
		f.Kind = KindLoadAluRR
		f.Sub = uint8(op)
		f.Aux = u.Dst // the loaded register
		f.Dst, f.Src = next.Dst, next.Src
		f.Next = next.Next
		f.Cost = u.Cost + next.Cost
		return f, 2

	case KindMovRR:
		switch next.Kind {
		case KindPopR:
			// The binary-operation tail: mov rB, rA ; pop rC [; op rC, rB].
			// With the matching ALU op adjacent the whole triple fuses —
			// unless rB == rC: then the pop overwrites the moved value
			// and the ALU must read the popped one, so only the pair
			// fuses and the ALU stays a separate micro-op.
			if i+2 < len(us) && u.Dst != next.Dst {
				if op, ok := loadAluOps[us[i+2].Kind]; ok && op != AluCmp && op != AluTest &&
					us[i+2].Dst == next.Dst && us[i+2].Src == u.Dst {
					return Uop{
						Kind: KindMovPopAluRR, Sub: uint8(op),
						Aux: u.Dst, Src: u.Src, Dst: next.Dst,
						Imm: next.EIP, EIP: u.EIP, Next: us[i+2].Next,
						Cost: u.Cost + next.Cost + us[i+2].Cost,
					}, 3
				}
			}
			return Uop{
				Kind: KindMovPop, Aux: u.Dst, Src: u.Src, Dst: next.Dst,
				Imm: next.EIP, EIP: u.EIP, Next: next.Next,
				Cost: u.Cost + next.Cost,
			}, 2
		case KindLoad:
			f := *next
			f.Kind, f.Aux, f.Src = KindMovLoad, u.Dst, u.Src
			f.Imm = next.EIP
			f.EIP, f.Cost = u.EIP, u.Cost+next.Cost
			return f, 2
		}

	case KindMovRI:
		switch next.Kind {
		case KindPushR:
			return Uop{
				Kind: KindMovIPush, Dst: u.Dst, Imm: u.Imm, Src: next.Src,
				Disp: next.EIP, EIP: u.EIP, Next: next.Next,
				Cost: u.Cost + next.Cost,
			}, 2
		case KindMovRR:
			return Uop{
				Kind: KindMovIMov, Dst: u.Dst, Imm: u.Imm,
				Aux: next.Dst, Src: next.Src,
				EIP: u.EIP, Next: next.Next, Cost: u.Cost + next.Cost,
			}, 2
		}

	case KindPushR:
		switch next.Kind {
		case KindLoad:
			f := *next
			f.Kind, f.Src = KindPushLoad, u.Src
			f.Imm = next.EIP
			f.EIP, f.Cost = u.EIP, u.Cost+next.Cost
			return f, 2
		case KindMovRI:
			return Uop{
				Kind: KindPushMovI, Src: u.Src, Dst: next.Dst, Imm: next.Imm,
				EIP: u.EIP, Next: next.Next, Cost: u.Cost + next.Cost,
			}, 2
		case KindCall:
			return Uop{
				Kind: KindPushCall, Src: u.Src, Target: next.Target,
				Imm: next.EIP, EIP: u.EIP, Next: next.Next,
				Cost: u.Cost + next.Cost,
			}, 2
		}

	case KindPopR:
		switch next.Kind {
		case KindStore:
			f := *next
			f.Kind, f.Dst = KindPopStore, u.Dst
			f.Imm = next.EIP
			f.EIP, f.Cost = u.EIP, u.Cost+next.Cost
			return f, 2
		case KindRet:
			// pop esp would redirect the RET's own stack read; leave
			// that (pathological) shape unfused.
			if u.Dst == uint8(x86.ESP) {
				return Uop{}, 0
			}
			return Uop{
				Kind: KindPopRet, Dst: u.Dst, Imm: next.Imm,
				Disp: next.EIP, EIP: u.EIP, Next: next.Next,
				Cost: u.Cost + next.Cost,
			}, 2
		}
	}
	return Uop{}, 0
}

// nfKinds maps every flag-elision candidate to its flag-suppressed
// form. Pure flag-writers (CMP/TEST) with dead flags become NOPs.
var nfKinds = map[Kind]Kind{
	KindAddRR: KindAddRRNF, KindAddRI: KindAddRINF,
	KindSubRR: KindSubRRNF, KindSubRI: KindSubRINF,
	KindAndRR: KindAndRRNF, KindAndRI: KindAndRINF,
	KindOrRR: KindOrRRNF, KindOrRI: KindOrRINF,
	KindXorRR: KindXorRRNF, KindXorRI: KindXorRINF,
	KindIncR: KindIncRNF, KindDecR: KindDecRNF,
	KindShiftRI: KindShiftRINF, KindShiftRCL: KindShiftRCLNF,
	KindCmpRR: KindNop, KindCmpRI: KindNop,
	KindTestRR: KindNop, KindTestRI: KindNop,
	KindCmpBoolRR: KindCmpBoolRRNF, KindCmpBoolRI: KindCmpBoolRINF,
	KindTestBoolRR: KindTestBoolRRNF, KindTestBoolRI: KindTestBoolRINF,
	KindLoadAluRR: KindLoadAluRRNF, KindMovPopAluRR: KindMovPopAluRRNF,
	KindGuardCmpRR: KindGuardCmpRRNF, KindGuardCmpRI: KindGuardCmpRINF,
	KindGuardTestRR: KindGuardTestRRNF, KindGuardTestRI: KindGuardTestRINF,
}

// elideDeadFlags is the backward liveness pass. live starts all-set at
// the fragment exit (successor blocks are unknown, so every flag must
// be assumed observable there) and flows backward; a record-writing
// micro-op reached with no live flags is downgraded in place and
// becomes transparent to the analysis, letting elision cascade through
// runs of dead flag-writers.
func elideDeadFlags(us []Uop) uint64 {
	var elided uint64
	live := x86.FlagsAll
	for i := len(us) - 1; i >= 0; i-- {
		u := &us[i]
		if live == x86.FlagsNone {
			if nk, ok := nfKinds[u.Kind]; ok {
				u.Kind = nk
				elided++
				continue
			}
		}
		use, def := flagEffect(u)
		live = live&^def | use
	}
	return elided
}

// flagEffect returns the flags one micro-op reads and writes, for the
// liveness walk. Writers of a full lazy record define all five flags;
// micro-ops that may leave the flags untouched at runtime (a CL shift
// with a zero count) define none, so earlier writers stay live across
// them.
func flagEffect(u *Uop) (use, def x86.FlagSet) {
	switch u.Kind {
	case KindAddRR, KindAddRI, KindSubRR, KindSubRI,
		KindAndRR, KindAndRI, KindOrRR, KindOrRI, KindXorRR, KindXorRI,
		KindCmpRR, KindCmpRI, KindTestRR, KindTestRI,
		KindNegR, KindShiftRI,
		KindImulRR, KindImulRM, KindImulRRI, KindImulRMI, KindMulR, KindMulM,
		KindCmpJccRR, KindCmpJccRI, KindTestJccRR, KindTestJccRI,
		KindCmpSetccRR, KindCmpSetccRI, KindTestSetccRR, KindTestSetccRI,
		KindCmpBoolRR, KindCmpBoolRI, KindTestBoolRR, KindTestBoolRI,
		KindLoadAluRR, KindMovPopAluRR:
		return x86.FlagsNone, x86.FlagsAll

	case KindAluRR, KindAluRI, KindAluRM, KindAluMR, KindAluMI,
		KindAlu8RR, KindAlu8RI, KindAlu8RM, KindAlu8MR, KindAlu8MI:
		op := AluOp(u.Sub)
		if op == AluAdc || op == AluSbb {
			return x86.FlagCF, x86.FlagsAll
		}
		return x86.FlagsNone, x86.FlagsAll

	case KindIncR, KindDecR:
		// INC/DEC preserve CF: re-recording the full flag state carries
		// the incoming CF through, so they read it — unless elided, in
		// which case the NF form touches no flags at all.
		return x86.FlagCF, x86.FlagsAll

	case KindShiftRCL:
		// A zero CL count writes nothing at runtime; the form may not
		// define, so it kills no earlier record.
		return x86.FlagsNone, x86.FlagsNone

	case KindJcc, KindSetccR8, KindSetccM8:
		return x86.CCUses(x86.CC(u.Sub)), x86.FlagsNone

	case KindGuard, KindRetGuard:
		// A plain guard reads its condition from the current flags (a
		// return guard reads none), and both exit paths leave the
		// superblock with the current state observable by arbitrary
		// successors — so every flag is live through them.
		return x86.FlagsAll, x86.FlagsNone

	case KindGuardCmpRR, KindGuardCmpRI, KindGuardTestRR, KindGuardTestRI:
		// The fused compare executes on both paths, so it defines the
		// full flag state like any compare.
		return x86.FlagsNone, x86.FlagsAll

	case KindGuardCmpRRNF, KindGuardCmpRINF, KindGuardTestRRNF, KindGuardTestRINF:
		// Record written only on the exit path, where it is itself the
		// full flag state; transparent on the straight-line path (that
		// is what made the downgrade legal).
		return x86.FlagsNone, x86.FlagsNone

	case KindInt, KindGeneric, KindHlt, KindUd2:
		// Syscall gates park the VM with snapshot-visible state, the
		// generic escape materializes eagerly, and HLT/UD2 are the
		// deliberate, differential-tested trap points: all must see
		// exact flags.
		return x86.FlagsAll, x86.FlagsNone

	case KindString:
		// MOVS/STOS are declared flag-free in the opcode tables; keep
		// the lookup so a future string op with flag effects is
		// handled by its metadata, not by this switch.
		return u.Inst.InstFlagUse(), x86.OpFlagDef(u.Inst.Op)
	}
	return x86.FlagsNone, x86.FlagsNone
}

// Cost returns the total guest-instruction cost of a fragment: the
// fuel charge for executing it end to end.
func Cost(us []Uop) int64 {
	var c int64
	for i := range us {
		c += int64(us[i].Cost)
	}
	return c
}
