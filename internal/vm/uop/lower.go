package uop

import "vxa/internal/x86"

// aluOps maps the x86 two-operand ALU opcodes onto AluOp selectors.
var aluOps = map[x86.Op]AluOp{
	x86.ADD: AluAdd, x86.ADC: AluAdc, x86.SUB: AluSub, x86.SBB: AluSbb,
	x86.AND: AluAnd, x86.OR: AluOr, x86.XOR: AluXor,
	x86.CMP: AluCmp, x86.TEST: AluTest,
}

// shOps maps the specialized shift opcodes onto ShOp selectors (rotates
// are not specialized and take the generic path).
var shOps = map[x86.Op]ShOp{x86.SHL: ShShl, x86.SHR: ShShr, x86.SAR: ShSar}

// aluRRKinds and aluRIKinds give the fully specialized kind for the
// hottest 32-bit reg/reg and reg/imm ALU forms; KindNop marks the ops
// (ADC/SBB, which consume CF) that stay on the Sub-dispatched path.
var aluRRKinds = [9]Kind{
	AluAdd: KindAddRR, AluSub: KindSubRR, AluCmp: KindCmpRR,
	AluAnd: KindAndRR, AluOr: KindOrRR, AluXor: KindXorRR, AluTest: KindTestRR,
}

var aluRIKinds = [9]Kind{
	AluAdd: KindAddRI, AluSub: KindSubRI, AluCmp: KindCmpRI,
	AluAnd: KindAndRI, AluOr: KindOrRI, AluXor: KindXorRI, AluTest: KindTestRI,
}

// Lower translates one decoded basic block into its micro-op form. insts
// must be the block's own backing slice: generic escapes keep pointers
// into it, so it must stay immutable for the lifetime of the result.
// addrs[i] is the guest address of insts[i]. Lowering is 1:1 — uop i is
// instruction i, each with Cost 1. Only the optimizer's fusion pass
// (opt.go) breaks the 1:1 shape, and it preserves the total Cost, which
// is what the VM's fuel accounting charges.
func Lower(insts []x86.Inst, addrs []uint32) []Uop {
	out := make([]Uop, len(insts))
	for i := range insts {
		lowerInst(&out[i], &insts[i], addrs[i])
	}
	return out
}

// setEA copies a memory operand's pre-resolved address components,
// mapping absent registers onto the always-zero RegZero slot so the
// executor's address arithmetic is branchless.
func (u *Uop) setEA(a *x86.Arg) {
	u.Base, u.Idx, u.Scale = RegZero, RegZero, 0
	if a.Base != x86.NoReg {
		u.Base = uint8(a.Base)
	}
	if a.Index != x86.NoReg {
		u.Idx, u.Scale = uint8(a.Index), a.Scale
	}
	u.Disp = uint32(a.Disp)
}

// setDst8 and setSrc8 pre-resolve byte register operands to their
// storage slot.
func (u *Uop) setDst8(r x86.Reg) {
	store, sh := x86.Reg8Slot(r)
	u.Dst, u.Dsh = uint8(store), sh
}

func (u *Uop) setSrc8(r x86.Reg) {
	store, sh := x86.Reg8Slot(r)
	u.Src, u.Ssh = uint8(store), sh
}

func lowerInst(u *Uop, inst *x86.Inst, addr uint32) {
	u.EIP = addr
	u.Next = addr + uint32(inst.Len)
	u.Cost = 1 // lowering is 1:1; only the optimizer's fusion changes this
	form := inst.Form()

	// generic routes the instruction to the reference interpreter.
	generic := func(k Kind) {
		u.Kind = k
		u.Inst = inst
	}

	switch inst.Op {
	case x86.NOP:
		u.Kind = KindNop

	case x86.MOV:
		switch form {
		case x86.FormRR:
			if inst.Dst.Size == 4 {
				u.Kind, u.Dst, u.Src = KindMovRR, uint8(inst.Dst.Reg), uint8(inst.Src.Reg)
			} else {
				u.Kind = KindMovRR8
				u.setDst8(inst.Dst.Reg)
				u.setSrc8(inst.Src.Reg)
			}
		case x86.FormRI:
			if inst.Dst.Size == 4 {
				u.Kind, u.Dst, u.Imm = KindMovRI, uint8(inst.Dst.Reg), uint32(inst.Src.Imm)
			} else {
				u.Kind = KindMovRI8
				u.setDst8(inst.Dst.Reg)
				u.Imm = uint32(inst.Src.Imm) & 0xFF
			}
		case x86.FormRM:
			u.setEA(&inst.Src)
			if inst.Dst.Size == 4 {
				u.Kind, u.Dst = KindLoad, uint8(inst.Dst.Reg)
			} else {
				u.Kind = KindLoad8
				u.setDst8(inst.Dst.Reg)
			}
		case x86.FormMR:
			u.setEA(&inst.Dst)
			if inst.Dst.Size == 4 {
				u.Kind, u.Src = KindStore, uint8(inst.Src.Reg)
			} else {
				u.Kind = KindStore8
				u.setSrc8(inst.Src.Reg)
			}
		case x86.FormMI:
			u.setEA(&inst.Dst)
			if inst.Dst.Size == 4 {
				u.Kind, u.Imm = KindStoreI, uint32(inst.Src.Imm)
			} else {
				u.Kind, u.Imm = KindStoreI8, uint32(inst.Src.Imm)&0xFF
			}
		default:
			generic(KindGeneric)
		}

	case x86.MOVZX, x86.MOVSX:
		sx := inst.Op == x86.MOVSX
		u.Dst = uint8(inst.Dst.Reg)
		switch {
		case inst.Src.Kind == x86.KindReg && inst.Src.Size == 1:
			u.setSrc8(inst.Src.Reg)
			u.Kind = pick(sx, KindMovsxRR8, KindMovzxRR8)
		case inst.Src.Kind == x86.KindReg && inst.Src.Size == 2:
			u.Src = uint8(inst.Src.Reg)
			u.Kind = pick(sx, KindMovsxRR16, KindMovzxRR16)
		case inst.Src.Kind == x86.KindMem && inst.Src.Size == 1:
			u.setEA(&inst.Src)
			u.Kind = pick(sx, KindMovsxRM8, KindMovzxRM8)
		case inst.Src.Kind == x86.KindMem && inst.Src.Size == 2:
			u.setEA(&inst.Src)
			u.Kind = pick(sx, KindMovsxRM16, KindMovzxRM16)
		default:
			generic(KindGeneric)
		}

	case x86.LEA:
		u.Kind, u.Dst = KindLea, uint8(inst.Dst.Reg)
		u.setEA(&inst.Src)

	case x86.XCHG:
		if form == x86.FormRR && inst.Dst.Size == 4 {
			u.Kind, u.Dst, u.Src = KindXchgRR, uint8(inst.Dst.Reg), uint8(inst.Src.Reg)
		} else {
			generic(KindGeneric)
		}

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST:
		u.Sub = uint8(aluOps[inst.Op])
		wide := inst.Dst.Size == 4
		switch form {
		case x86.FormRR:
			if wide {
				u.Dst, u.Src = uint8(inst.Dst.Reg), uint8(inst.Src.Reg)
				if k := aluRRKinds[u.Sub]; k != KindNop {
					u.Kind = k
				} else {
					u.Kind = KindAluRR
				}
			} else {
				u.Kind = KindAlu8RR
				u.setDst8(inst.Dst.Reg)
				u.setSrc8(inst.Src.Reg)
			}
		case x86.FormRI:
			if wide {
				u.Dst, u.Imm = uint8(inst.Dst.Reg), uint32(inst.Src.Imm)
				if k := aluRIKinds[u.Sub]; k != KindNop {
					u.Kind = k
				} else {
					u.Kind = KindAluRI
				}
			} else {
				u.Kind = KindAlu8RI
				u.setDst8(inst.Dst.Reg)
				u.Imm = uint32(inst.Src.Imm) & 0xFF
			}
		case x86.FormRM:
			u.setEA(&inst.Src)
			if wide {
				u.Kind, u.Dst = KindAluRM, uint8(inst.Dst.Reg)
			} else {
				u.Kind = KindAlu8RM
				u.setDst8(inst.Dst.Reg)
			}
		case x86.FormMR:
			u.setEA(&inst.Dst)
			if wide {
				u.Kind, u.Src = KindAluMR, uint8(inst.Src.Reg)
			} else {
				u.Kind = KindAlu8MR
				u.setSrc8(inst.Src.Reg)
			}
		case x86.FormMI:
			u.setEA(&inst.Dst)
			if wide {
				u.Kind, u.Imm = KindAluMI, uint32(inst.Src.Imm)
			} else {
				u.Kind, u.Imm = KindAlu8MI, uint32(inst.Src.Imm)&0xFF
			}
		default:
			generic(KindGeneric)
		}

	case x86.INC, x86.DEC:
		if form == x86.FormR && inst.Dst.Size == 4 {
			u.Dst = uint8(inst.Dst.Reg)
			u.Kind = pick(inst.Op == x86.INC, KindIncR, KindDecR)
		} else {
			generic(KindGeneric)
		}

	case x86.NEG:
		if form == x86.FormR && inst.Dst.Size == 4 {
			u.Kind, u.Dst = KindNegR, uint8(inst.Dst.Reg)
		} else {
			generic(KindGeneric)
		}

	case x86.NOT:
		if form == x86.FormR && inst.Dst.Size == 4 {
			u.Kind, u.Dst = KindNotR, uint8(inst.Dst.Reg)
		} else {
			generic(KindGeneric)
		}

	case x86.SHL, x86.SHR, x86.SAR:
		if inst.Dst.Kind != x86.KindReg || inst.Dst.Size != 4 {
			generic(KindGeneric)
			break
		}
		u.Sub = uint8(shOps[inst.Op])
		u.Dst = uint8(inst.Dst.Reg)
		if inst.Src.Kind == x86.KindImm {
			count := uint32(inst.Src.Imm) & 31
			if count == 0 {
				// A zero shift changes neither the value nor any flags.
				*u = Uop{Kind: KindNop, EIP: u.EIP, Next: u.Next, Cost: 1}
				break
			}
			u.Kind, u.Imm = KindShiftRI, count
		} else {
			// The decoder only produces CL as a register count.
			u.Kind = KindShiftRCL
		}

	case x86.IMUL:
		wide := inst.Dst.Size == 4 && inst.Src.Size == 4
		u.Dst = uint8(inst.Dst.Reg)
		switch {
		case !wide:
			generic(KindGeneric)
		case inst.Aux.Kind == x86.KindImm && inst.Src.Kind == x86.KindReg:
			u.Kind, u.Src, u.Imm = KindImulRRI, uint8(inst.Src.Reg), uint32(inst.Aux.Imm)
		case inst.Aux.Kind == x86.KindImm && inst.Src.Kind == x86.KindMem:
			u.Kind, u.Imm = KindImulRMI, uint32(inst.Aux.Imm)
			u.setEA(&inst.Src)
		case inst.Src.Kind == x86.KindReg:
			u.Kind, u.Src = KindImulRR, uint8(inst.Src.Reg)
		case inst.Src.Kind == x86.KindMem:
			u.Kind = KindImulRM
			u.setEA(&inst.Src)
		default:
			generic(KindGeneric)
		}

	case x86.MUL1, x86.IMUL1:
		if inst.Dst.Size != 4 {
			generic(KindGeneric)
			break
		}
		if inst.Op == x86.IMUL1 {
			u.Sub = 1
		}
		if inst.Dst.Kind == x86.KindReg {
			u.Kind, u.Src = KindMulR, uint8(inst.Dst.Reg)
		} else {
			u.Kind = KindMulM
			u.setEA(&inst.Dst)
		}

	case x86.DIV, x86.IDIV:
		if inst.Dst.Size != 4 {
			generic(KindGeneric)
			break
		}
		if inst.Op == x86.IDIV {
			u.Sub = 1
		}
		if inst.Dst.Kind == x86.KindReg {
			u.Kind, u.Src = KindDivR, uint8(inst.Dst.Reg)
		} else {
			u.Kind = KindDivM
			u.setEA(&inst.Dst)
		}

	case x86.CDQ:
		u.Kind = KindCdq

	case x86.PUSH:
		switch inst.Dst.Kind {
		case x86.KindReg:
			u.Kind, u.Src = KindPushR, uint8(inst.Dst.Reg)
		case x86.KindImm:
			u.Kind, u.Imm = KindPushI, uint32(inst.Dst.Imm)
		default:
			u.Kind = KindPushM
			u.setEA(&inst.Dst)
		}

	case x86.POP:
		if inst.Dst.Kind == x86.KindReg {
			u.Kind, u.Dst = KindPopR, uint8(inst.Dst.Reg)
		} else {
			u.Kind = KindPopM
			u.setEA(&inst.Dst)
		}

	case x86.SETCC:
		u.Sub = uint8(inst.CC)
		if inst.Dst.Kind == x86.KindReg {
			u.Kind = KindSetccR8
			u.setDst8(inst.Dst.Reg)
		} else {
			u.Kind = KindSetccM8
			u.setEA(&inst.Dst)
		}

	case x86.JMP:
		u.Kind, u.Target = KindJmp, u.Next+uint32(inst.Rel)

	case x86.JCC:
		u.Kind, u.Sub, u.Target = KindJcc, uint8(inst.CC), u.Next+uint32(inst.Rel)

	case x86.CALL:
		u.Kind, u.Target = KindCall, u.Next+uint32(inst.Rel)

	case x86.CALLM:
		if inst.Dst.Kind == x86.KindReg {
			u.Kind, u.Src = KindCallR, uint8(inst.Dst.Reg)
		} else {
			u.Kind = KindCallM
			u.setEA(&inst.Dst)
		}

	case x86.RET:
		u.Kind = KindRet
		if inst.Dst.Kind == x86.KindImm {
			u.Imm = uint32(inst.Dst.Imm)
		}

	case x86.JMPM:
		if inst.Dst.Kind == x86.KindReg {
			u.Kind, u.Src = KindJmpR, uint8(inst.Dst.Reg)
		} else {
			u.Kind = KindJmpM
			u.setEA(&inst.Dst)
		}

	case x86.INT:
		u.Kind, u.Imm = KindInt, uint32(inst.Dst.Imm)

	case x86.HLT:
		u.Kind = KindHlt

	case x86.UD2:
		u.Kind = KindUd2

	case x86.MOVSB, x86.MOVSD, x86.STOSB, x86.STOSD:
		generic(KindString)

	default:
		generic(KindGeneric)
	}
}

func pick(cond bool, a, b Kind) Kind {
	if cond {
		return a
	}
	return b
}
