// Package uop defines the VM's micro-op intermediate representation: the
// dense, operand-specialized form that decoded x86 fragments are lowered
// into before execution. Where the x86.Inst form is symbolic (operand
// kinds re-inspected on every step), a Uop resolves the operand shape at
// translate time — register numbers, partial-register byte slots,
// effective-address components and immediates sit in flat fields keyed by
// a specialized Kind, so the executor is a single dense switch with no
// per-step interface dance.
//
// The package also implements the lazy-flags discipline (see Flags):
// arithmetic micro-ops record {op, a, b, result} and the individual
// EFLAGS bits are materialized only when a consumer (Jcc, SETcc, ADC,
// SBB, or a generic-fallback instruction) actually asks for them.
//
// Lowering is total: any instruction without a specialized handler
// lowers to KindGeneric, which carries the decoded x86.Inst through to
// the VM's reference interpreter. Correctness therefore never depends on
// the specialization coverage — only speed does.
package uop

import "vxa/internal/x86"

// RegZero is the lowered encoding of an absent base or index register:
// it indexes the VM's ninth, always-zero register slot, so the executor
// computes every effective address branchlessly as
// disp + regs[Base] + regs[Idx]*Scale (an absent index also gets Scale
// 0). Translate time absorbs the x86.NoReg checks the interpreter used
// to make per step.
const RegZero uint8 = 8

// Kind selects the specialized handler for one micro-op. The executor
// switches on it; translate-time specialization means each kind's fields
// have a fixed, fully-resolved meaning.
type Kind uint8

// Micro-op kinds. Unless suffixed otherwise, operands are 32-bit.
// Suffix letters read dst-then-src: RR = reg←reg, RI = reg←imm,
// RM = reg←mem, MR = mem←reg, MI = mem←imm. An "8" names the byte form,
// whose register operands are pre-resolved (storage register + shift)
// partial-register slots.
const (
	KindNop Kind = iota

	// Moves.
	KindMovRR  // Dst ← Src
	KindMovRI  // Dst ← Imm
	KindMovRR8 // Dst.byte[Dsh] ← Src.byte[Ssh]
	KindMovRI8 // Dst.byte[Dsh] ← Imm
	KindLoad   // Dst ← mem32[ea]
	KindLoad8  // Dst.byte[Dsh] ← mem8[ea]
	KindStore  // mem32[ea] ← Src
	KindStore8 // mem8[ea] ← Src.byte[Ssh]
	KindStoreI // mem32[ea] ← Imm
	KindStoreI8
	KindLea // Dst ← ea

	// Widening moves.
	KindMovzxRR8  // Dst ← zx(Src.byte[Ssh])
	KindMovzxRR16 // Dst ← zx(Src & 0xFFFF)
	KindMovzxRM8  // Dst ← zx(mem8[ea])
	KindMovzxRM16 // Dst ← zx(mem16[ea])
	KindMovsxRR8
	KindMovsxRR16
	KindMovsxRM8
	KindMovsxRM16

	KindXchgRR // Dst ↔ Src

	// Fully specialized 32-bit ALU forms for the hottest operations:
	// the operation is baked into the kind, so the executor's case body
	// is a handful of machine ops with no secondary dispatch.
	KindAddRR
	KindAddRI
	KindSubRR
	KindSubRI
	KindCmpRR
	KindCmpRI
	KindAndRR
	KindAndRI
	KindOrRR
	KindOrRI
	KindXorRR
	KindXorRI
	KindTestRR
	KindTestRI

	// ALU, Sub = AluOp. CMP and TEST suppress the writeback.
	KindAluRR  // a=Dst, b=Src
	KindAluRI  // a=Dst, b=Imm
	KindAluRM  // a=Dst, b=mem32[ea]
	KindAluMR  // a=mem32[ea], b=Src, result back to mem
	KindAluMI  // a=mem32[ea], b=Imm, result back to mem
	KindAlu8RR // byte forms, reg slots pre-resolved
	KindAlu8RI
	KindAlu8RM
	KindAlu8MR
	KindAlu8MI

	KindIncR // Dst++ (CF preserved)
	KindDecR // Dst-- (CF preserved)
	KindNegR
	KindNotR

	// Shifts, Sub = ShOp; 32-bit register destinations only.
	KindShiftRI  // count = Imm (1..31; a zero count lowers to KindNop)
	KindShiftRCL // count = CL & 31 (a zero count is a runtime no-op)

	// Multiply/divide.
	KindImulRR  // Dst ← Dst * Src (signed, flags = overflow)
	KindImulRM  // Dst ← Dst * mem32[ea]
	KindImulRRI // Dst ← Src * Imm
	KindImulRMI // Dst ← mem32[ea] * Imm
	KindMulR    // edx:eax ← eax * Src; Sub != 0 means signed (IMUL1)
	KindMulM
	KindDivR // eax,edx ← edx:eax ÷ Src; Sub != 0 means signed (IDIV)
	KindDivM
	KindCdq

	// Stack.
	KindPushR
	KindPushI
	KindPushM
	KindPopR
	KindPopM

	KindSetccR8 // Dst.byte[Dsh] ← Sub(cc) ? 1 : 0
	KindSetccM8

	// Flag-suppressed ("NF") forms, produced by the optimizer's
	// dead-flag elimination pass: identical to their base kind except
	// that no lazy flag record is written (and for Inc/Dec, the
	// preserved CF is not read). Only emitted where liveness proved no
	// later consumer can observe the flags; see opt.go.
	KindAddRRNF
	KindAddRINF
	KindSubRRNF
	KindSubRINF
	KindAndRRNF
	KindAndRINF
	KindOrRRNF
	KindOrRINF
	KindXorRRNF
	KindXorRINF
	KindIncRNF
	KindDecRNF
	KindShiftRINF
	KindShiftRCLNF

	// Fused forms, produced by the optimizer's peephole pass. Each
	// represents Cost consecutive guest instructions; EIP is the first
	// instruction's address, Next the address after the last.
	//
	// The compare/branch and compare/setcc fusions evaluate the
	// condition directly from the compare operands — no lazy-flag
	// materialization at all — and still record the compare's flag
	// state for later consumers (unless liveness elides it; see the
	// NF variants and guards).

	// cmp a,b ; jcc — block terminator. Dst=a, Src/Imm=b, Sub=cc.
	KindCmpJccRR
	KindCmpJccRI
	// test a,b ; jcc.
	KindTestJccRR
	KindTestJccRI

	// cmp a,b ; setcc dst8. Src=a, Aux/Imm=b, Dst.byte[Dsh]=bool,
	// Sub=cc.
	KindCmpSetccRR
	KindCmpSetccRI
	KindTestSetccRR
	KindTestSetccRI

	// cmp a,b ; setcc dst8 ; movzx dst32,dst8 — the full boolean
	// materialization idiom. Src=a, Aux/Imm=b, Dst ← bool32, Sub=cc.
	KindCmpBoolRR
	KindCmpBoolRI
	KindTestBoolRR
	KindTestBoolRI
	KindCmpBoolRRNF // flag-record-suppressed variants
	KindCmpBoolRINF
	KindTestBoolRRNF
	KindTestBoolRINF

	// mov Aux, mem32[ea] ; alu Dst, Src — fused load-op. Sub=AluOp;
	// one of Dst/Src equals Aux (the loaded register).
	KindLoadAluRR
	KindLoadAluRRNF

	// Data-movement pair fusions. The VXA compiler's stack-machine
	// codegen makes push/pop/mov shuffles the bulk of the dynamic
	// micro-op stream (a binary operation is push lhs ... mov ecx,eax;
	// pop eax; op), so collapsing the stereotyped adjacent pairs halves
	// their dispatch count. Where the second constituent instruction
	// can trap, its EIP rides in an otherwise-unused field, noted per
	// kind; the executor reports faults with started=2 accounting.
	KindMovPop      // Aux ← Src ; Dst ← pop          (pop EIP in Imm)
	KindMovPopAluRR // Aux ← Src ; Dst ← pop ; Dst ← Dst Sub Aux (pop EIP in Imm)
	KindMovPopAluRRNF
	KindPushLoad // push Src ; Dst ← mem32[ea]        (load EIP in Imm)
	KindLoadPush // Aux ← mem32[ea] ; push Src        (push EIP in Imm)
	KindPushMovI // push Src ; Dst ← Imm
	KindMovIPush // Dst ← Imm ; push Src              (push EIP in Disp)
	KindMovIMov  // Dst ← Imm ; Aux ← Src
	KindMovLoad  // Aux ← Src ; Dst ← mem32[ea]       (load EIP in Imm)
	KindPopStore // Dst ← pop ; mem32[ea] ← Src       (store EIP in Imm)
	KindPopRet   // Dst ← pop ; eip ← pop ; esp += Imm (ret EIP in Disp); terminator
	KindPushCall // push Src ; push Next ; eip ← Target (call EIP in Imm); terminator

	// Guarded return, only inside superblocks: the trace inlined a
	// call, so the matching RET is expected to pop Target (the inlined
	// return address) and fall through; any other popped value exits
	// the superblock through the guard's indirect inline cache (Aux).
	// esp += 4 + Imm as for KindRet.
	KindRetGuard

	// Superblock guard exits (only ever inside a superblock; see
	// vm/superblock.go). A guard evaluates its condition and either
	// falls through to the next micro-op (the profiled hot path) or
	// leaves the superblock to Target. Aux indexes the superblock's
	// per-guard chain slot.
	KindGuard // Sub=cc evaluated from the current (possibly lazy) flags
	// Fused compare guards: condition from operands (Dst=a, Src/Imm=b).
	// The base forms record the compare's flag state on both paths —
	// architecturally the compare executes whether or not the branch
	// leaves the trace. The NF forms record it only on the exit path:
	// liveness substitutes them when the straight-line continuation
	// provably clobbers the flags before reading them.
	KindGuardCmpRR
	KindGuardCmpRI
	KindGuardTestRR
	KindGuardTestRI
	KindGuardCmpRRNF
	KindGuardCmpRINF
	KindGuardTestRRNF
	KindGuardTestRINF

	// Control transfers; always the last micro-op of a block.
	KindJmp   // eip ← Target (chainable)
	KindJcc   // Sub = cc; eip ← Target or Next (both chainable)
	KindCall  // push Next; eip ← Target (chainable)
	KindCallR // push Next; eip ← Src (indirect)
	KindCallM // push Next; eip ← mem32[ea] (indirect)
	KindRet   // eip ← pop; esp += Imm
	KindJmpR  // eip ← Src (indirect)
	KindJmpM  // eip ← mem32[ea] (indirect)
	KindInt   // syscall gate; resumes at Next (chainable)
	KindHlt
	KindUd2

	// Escapes to the reference interpreter.
	KindString  // MOVS/STOS (flag-free; Inst carries the REP prefix)
	KindGeneric // materialize flags, run Inst on the reference engine
)

// AluOp is the Sub selector of the KindAlu* micro-ops.
type AluOp uint8

// ALU sub-operations.
const (
	AluAdd AluOp = iota
	AluAdc
	AluSub
	AluSbb
	AluAnd
	AluOr
	AluXor
	AluCmp
	AluTest
)

// ShOp is the Sub selector of the KindShift* micro-ops.
type ShOp uint8

// Shift sub-operations.
const (
	ShShl ShOp = iota
	ShShr
	ShSar
)

// Uop is one micro-op. Field meaning is keyed by Kind; unused fields are
// zero. Register fields hold register numbers (or pre-resolved byte-slot
// storage registers for the 8-bit kinds, with Dsh/Ssh the slot shifts).
// Base/Idx/Scale/Disp describe the effective address of the memory
// operand; an absent base or index is encoded as RegZero (with Scale 0
// for an absent index), never as x86.NoReg.
type Uop struct {
	Kind  Kind
	Sub   uint8 // AluOp, ShOp, condition code, or signedness selector
	Dst   uint8
	Src   uint8
	Dsh   uint8 // byte-slot shift of Dst (0 or 8)
	Ssh   uint8 // byte-slot shift of Src (0 or 8)
	Base  uint8
	Idx   uint8
	Scale uint8
	Aux   uint8 // fused-form extra register / guard chain-slot index
	Cost  uint8 // guest instructions this micro-op represents (fuel units)

	Imm    uint32 // immediate / RET stack adjustment
	Disp   uint32 // effective-address displacement
	EIP    uint32 // address of the source instruction (trap reporting)
	Next   uint32 // address of the following instruction
	Target uint32 // absolute branch target for Jmp/Jcc/Call and guards

	Inst *x86.Inst // KindString / KindGeneric escape payload
}
