// Package uop defines the VM's micro-op intermediate representation: the
// dense, operand-specialized form that decoded x86 fragments are lowered
// into before execution. Where the x86.Inst form is symbolic (operand
// kinds re-inspected on every step), a Uop resolves the operand shape at
// translate time — register numbers, partial-register byte slots,
// effective-address components and immediates sit in flat fields keyed by
// a specialized Kind, so the executor is a single dense switch with no
// per-step interface dance.
//
// The package also implements the lazy-flags discipline (see Flags):
// arithmetic micro-ops record {op, a, b, result} and the individual
// EFLAGS bits are materialized only when a consumer (Jcc, SETcc, ADC,
// SBB, or a generic-fallback instruction) actually asks for them.
//
// Lowering is total: any instruction without a specialized handler
// lowers to KindGeneric, which carries the decoded x86.Inst through to
// the VM's reference interpreter. Correctness therefore never depends on
// the specialization coverage — only speed does.
package uop

import "vxa/internal/x86"

// RegZero is the lowered encoding of an absent base or index register:
// it indexes the VM's ninth, always-zero register slot, so the executor
// computes every effective address branchlessly as
// disp + regs[Base] + regs[Idx]*Scale (an absent index also gets Scale
// 0). Translate time absorbs the x86.NoReg checks the interpreter used
// to make per step.
const RegZero uint8 = 8

// Kind selects the specialized handler for one micro-op. The executor
// switches on it; translate-time specialization means each kind's fields
// have a fixed, fully-resolved meaning.
type Kind uint8

// Micro-op kinds. Unless suffixed otherwise, operands are 32-bit.
// Suffix letters read dst-then-src: RR = reg←reg, RI = reg←imm,
// RM = reg←mem, MR = mem←reg, MI = mem←imm. An "8" names the byte form,
// whose register operands are pre-resolved (storage register + shift)
// partial-register slots.
const (
	KindNop Kind = iota

	// Moves.
	KindMovRR  // Dst ← Src
	KindMovRI  // Dst ← Imm
	KindMovRR8 // Dst.byte[Dsh] ← Src.byte[Ssh]
	KindMovRI8 // Dst.byte[Dsh] ← Imm
	KindLoad   // Dst ← mem32[ea]
	KindLoad8  // Dst.byte[Dsh] ← mem8[ea]
	KindStore  // mem32[ea] ← Src
	KindStore8 // mem8[ea] ← Src.byte[Ssh]
	KindStoreI // mem32[ea] ← Imm
	KindStoreI8
	KindLea // Dst ← ea

	// Widening moves.
	KindMovzxRR8  // Dst ← zx(Src.byte[Ssh])
	KindMovzxRR16 // Dst ← zx(Src & 0xFFFF)
	KindMovzxRM8  // Dst ← zx(mem8[ea])
	KindMovzxRM16 // Dst ← zx(mem16[ea])
	KindMovsxRR8
	KindMovsxRR16
	KindMovsxRM8
	KindMovsxRM16

	KindXchgRR // Dst ↔ Src

	// Fully specialized 32-bit ALU forms for the hottest operations:
	// the operation is baked into the kind, so the executor's case body
	// is a handful of machine ops with no secondary dispatch.
	KindAddRR
	KindAddRI
	KindSubRR
	KindSubRI
	KindCmpRR
	KindCmpRI
	KindAndRR
	KindAndRI
	KindOrRR
	KindOrRI
	KindXorRR
	KindXorRI
	KindTestRR
	KindTestRI

	// ALU, Sub = AluOp. CMP and TEST suppress the writeback.
	KindAluRR  // a=Dst, b=Src
	KindAluRI  // a=Dst, b=Imm
	KindAluRM  // a=Dst, b=mem32[ea]
	KindAluMR  // a=mem32[ea], b=Src, result back to mem
	KindAluMI  // a=mem32[ea], b=Imm, result back to mem
	KindAlu8RR // byte forms, reg slots pre-resolved
	KindAlu8RI
	KindAlu8RM
	KindAlu8MR
	KindAlu8MI

	KindIncR // Dst++ (CF preserved)
	KindDecR // Dst-- (CF preserved)
	KindNegR
	KindNotR

	// Shifts, Sub = ShOp; 32-bit register destinations only.
	KindShiftRI  // count = Imm (1..31; a zero count lowers to KindNop)
	KindShiftRCL // count = CL & 31 (a zero count is a runtime no-op)

	// Multiply/divide.
	KindImulRR  // Dst ← Dst * Src (signed, flags = overflow)
	KindImulRM  // Dst ← Dst * mem32[ea]
	KindImulRRI // Dst ← Src * Imm
	KindImulRMI // Dst ← mem32[ea] * Imm
	KindMulR    // edx:eax ← eax * Src; Sub != 0 means signed (IMUL1)
	KindMulM
	KindDivR // eax,edx ← edx:eax ÷ Src; Sub != 0 means signed (IDIV)
	KindDivM
	KindCdq

	// Stack.
	KindPushR
	KindPushI
	KindPushM
	KindPopR
	KindPopM

	KindSetccR8 // Dst.byte[Dsh] ← Sub(cc) ? 1 : 0
	KindSetccM8

	// Control transfers; always the last micro-op of a block.
	KindJmp   // eip ← Target (chainable)
	KindJcc   // Sub = cc; eip ← Target or Next (both chainable)
	KindCall  // push Next; eip ← Target (chainable)
	KindCallR // push Next; eip ← Src (indirect)
	KindCallM // push Next; eip ← mem32[ea] (indirect)
	KindRet   // eip ← pop; esp += Imm
	KindJmpR  // eip ← Src (indirect)
	KindJmpM  // eip ← mem32[ea] (indirect)
	KindInt   // syscall gate; resumes at Next (chainable)
	KindHlt
	KindUd2

	// Escapes to the reference interpreter.
	KindString  // MOVS/STOS (flag-free; Inst carries the REP prefix)
	KindGeneric // materialize flags, run Inst on the reference engine
)

// AluOp is the Sub selector of the KindAlu* micro-ops.
type AluOp uint8

// ALU sub-operations.
const (
	AluAdd AluOp = iota
	AluAdc
	AluSub
	AluSbb
	AluAnd
	AluOr
	AluXor
	AluCmp
	AluTest
)

// ShOp is the Sub selector of the KindShift* micro-ops.
type ShOp uint8

// Shift sub-operations.
const (
	ShShl ShOp = iota
	ShShr
	ShSar
)

// Uop is one micro-op. Field meaning is keyed by Kind; unused fields are
// zero. Register fields hold register numbers (or pre-resolved byte-slot
// storage registers for the 8-bit kinds, with Dsh/Ssh the slot shifts).
// Base/Idx/Scale/Disp describe the effective address of the memory
// operand; an absent base or index is encoded as RegZero (with Scale 0
// for an absent index), never as x86.NoReg.
type Uop struct {
	Kind  Kind
	Sub   uint8 // AluOp, ShOp, condition code, or signedness selector
	Dst   uint8
	Src   uint8
	Dsh   uint8 // byte-slot shift of Dst (0 or 8)
	Ssh   uint8 // byte-slot shift of Src (0 or 8)
	Base  uint8
	Idx   uint8
	Scale uint8

	Imm    uint32 // immediate / RET stack adjustment
	Disp   uint32 // effective-address displacement
	EIP    uint32 // address of the source instruction (trap reporting)
	Next   uint32 // address of the following instruction
	Target uint32 // absolute branch target for Jmp/Jcc/Call

	Inst *x86.Inst // KindString / KindGeneric escape payload
}
