//go:build !linux

package vm

// guestMem is a no-op owner on platforms without the mmap-backed guest
// allocator: the buffer is ordinary garbage-collected heap memory.
type guestMem struct{}

// allocGuestMem returns a zeroed guest address space from the Go heap.
// See mem_linux.go for the mmap-backed fast path this mirrors.
func allocGuestMem(size uint32) (*guestMem, []byte) {
	if size == 0 {
		return &guestMem{}, nil
	}
	return &guestMem{}, make([]byte, size)
}
