//go:build amd64 || 386 || arm64 || ppc64le || wasm

package vm

import "unsafe"

// Little-endian hosts with architecturally guaranteed unaligned access
// (the set Go's own runtime treats as unaligned-safe) read and write
// guest words directly: one machine load/store instead of four byte
// accesses. Guest addresses are arbitrary, so platforms where an
// unaligned word access rotates (old 32-bit arm) or traps to a kernel
// fixup (mips) must take the portable byte path instead. The leading
// index expression keeps Go-level memory safety (it panics unless
// [addr, addr+4) is in bounds) and is the only check the compiler
// emits; callers have already done the sandbox check.

func le32(m []byte, addr uint32) uint32 {
	_ = m[addr+3]
	return *(*uint32)(unsafe.Pointer(&m[addr]))
}

func st32(m []byte, addr, val uint32) {
	_ = m[addr+3]
	*(*uint32)(unsafe.Pointer(&m[addr])) = val
}
