package vm

import (
	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// Superblock formation: when a block has run hot, the chain of blocks
// control actually flows through — the dominant path, per the taken/
// fall edge counters the Jcc dispatch maintains — is re-translated as
// one straight-line fragment. Interior direct jumps disappear, interior
// conditional branches become guard exits (taken only when control
// leaves the trace), and the whole fragment goes back through the
// optimizer, so instruction fusion and flag liveness now work across
// the original block boundaries: a loop whose body spans four fragments
// pays one dispatch-loop entry per iteration instead of four, and a
// flag record that died across a block edge is elided instead of kept
// for a successor that clobbers it.
//
// Superblocks are per-VM, profile-driven state: they hang off the base
// bref (never the snapshot-shared block map), are dropped wholesale by
// Reset, and are torn down for re-formation when their guards fire on
// most entries (the profile went stale). The base blocks they were
// assembled from stay in the cache untouched — cold entries into the
// middle of a trace still execute them directly.
const (
	// sbHotThreshold is how many times a block must be entered before
	// its dominant path is re-translated.
	sbHotThreshold = 17
	// sbMaxBlocks and sbMaxUops bound one superblock's growth.
	sbMaxBlocks = 64
	sbMaxUops   = 1536
	// sbMinExits guard exits must accumulate before the exit/entry
	// ratio is consulted for invalidation; a superblock whose exits
	// then exceed half its entries is torn down and re-profiled, at
	// most sbMaxReforms times per block.
	sbMinExits   = 256
	sbMaxReforms = 8
)

// sbGuardKind reports whether a micro-op kind is a conditional guard,
// whose Aux field is a chain-slot index rather than a register. The
// set must cover every guard variant the optimizer can fuse a
// KindGuard into; formSuperblock and the snapshot deserializer both
// number slots by scanning with this predicate, which is what keeps a
// persisted superblock's slot geometry identical to a freshly formed
// one's.
func sbGuardKind(k uop.Kind) bool {
	switch k {
	case uop.KindGuard, uop.KindGuardCmpRR, uop.KindGuardCmpRI,
		uop.KindGuardTestRR, uop.KindGuardTestRI,
		uop.KindGuardCmpRRNF, uop.KindGuardCmpRINF,
		uop.KindGuardTestRRNF, uop.KindGuardTestRINF:
		return true
	}
	return false
}

// sbNumberSlots assigns each guard its exit-chain slot and each return
// guard its inline-cache slot, in order, and returns the slot counts.
func sbNumberSlots(us []uop.Uop) (guards, rets int) {
	for i := range us {
		switch {
		case sbGuardKind(us[i].Kind):
			us[i].Aux = uint8(guards)
			guards++
		case us[i].Kind == uop.KindRetGuard:
			us[i].Aux = uint8(rets)
			rets++
		}
	}
	return guards, rets
}

// sbEndsTrace reports whether a terminator micro-op kind ends
// superblock growth outright: indirect jumps and calls, syscall gates
// and deliberate traps all stay block-final. Direct calls and returns
// are NOT here: the trace grows through them (the paper's §5.2
// decoder-loop inlining), pairing each inlined call with a guarded
// return.
func sbEndsTrace(k uop.Kind) bool {
	switch k {
	case uop.KindCallR, uop.KindCallM,
		uop.KindJmpR, uop.KindJmpM, uop.KindInt, uop.KindHlt, uop.KindUd2:
		return true
	}
	return false
}

// formSuperblock attempts to grow and install a superblock for the hot
// block entry. On success entry.sb carries the new fragment's bref; on
// failure (nothing to grow) the entry is marked tried so the attempt is
// not repeated until a re-profile.
func (v *VM) formSuperblock(entry *bref) {
	entry.sbTried = true
	if v.noCache {
		return
	}

	var uops []uop.Uop
	visited := make(map[*block]bool)
	var callRets []uint32 // return addresses of calls inlined so far
	cur := entry
	blocks := 0
	lastEnd := entry.b.end

	for {
		b := cur.b
		blocks++
		lastEnd = b.end
		raw := uop.Lower(b.insts, b.addrs)
		term := &raw[len(raw)-1]

		// Decide how this block continues the trace. Branch-driven
		// growth (jmp/jcc/fall-through) marks blocks visited and stops
		// on revisit — that is the loop back edge, which must stay a
		// real terminator so iterations re-enter the superblock.
		// Call-driven growth skips the visited check (two call sites
		// may legitimately inline one callee); sbMaxBlocks bounds it.
		full := blocks >= sbMaxBlocks || len(uops)+len(raw) > sbMaxUops
		var nextAddr uint32
		var repl *uop.Uop // replacement for the terminator, if any
		grow, viaCall := false, false
		switch {
		case sbEndsTrace(term.Kind):
			// keep the terminator; trace ends here

		case term.Kind == uop.KindJmp:
			visited[b] = true
			if !full {
				nextAddr, grow = term.Target, true
			}

		case term.Kind == uop.KindJcc:
			visited[b] = true
			if !full {
				// Follow the profiled dominant edge; the guard exits to
				// the other side with the condition inverted as needed.
				g := *term
				g.Kind = uop.KindGuard
				if cur.takenCnt >= cur.fallCnt {
					g.Sub = uint8(x86.CC(term.Sub).Negate())
					g.Target = term.Next
					nextAddr = term.Target
				} else {
					g.Target = term.Target
					nextAddr = term.Next
				}
				repl, grow = &g, true
			}

		case term.Kind == uop.KindCall:
			// Inline the callee: the call's push of the return address
			// stays (as a push-immediate), execution falls into the
			// callee's entry.
			if !full {
				p := *term
				p.Kind, p.Imm, p.Target = uop.KindPushI, term.Next, 0
				repl, grow, viaCall = &p, true, true
				nextAddr = term.Target
			}

		case term.Kind == uop.KindRet:
			// A return matching an inlined call continues the trace at
			// the recorded return address, guarded at runtime: any
			// other popped value exits through the guard's inline
			// cache. An unmatched return ends the trace.
			if !full && len(callRets) > 0 {
				g := *term
				g.Kind = uop.KindRetGuard
				g.Target = callRets[len(callRets)-1]
				repl, grow, viaCall = &g, true, true
				nextAddr = g.Target
				callRets = callRets[:len(callRets)-1]
			}

		default:
			// No control terminator: the block fell through at the
			// fragment-length cap.
			visited[b] = true
			if !full {
				nextAddr, grow = b.end, true
			}
		}

		var next *bref
		if grow {
			nb, err := v.lookupBlock(nextAddr)
			if err != nil || (!viaCall && visited[nb.b]) {
				// Undecodable successor or trace closure (the loop back
				// edge): keep the original terminator and stop.
				grow = false
			} else {
				next = nb
			}
		}

		if !grow {
			uops = append(uops, raw...)
			switch term.Kind {
			case uop.KindJmp, uop.KindJcc, uop.KindCall, uop.KindRet:
			default:
				if !sbEndsTrace(term.Kind) {
					// A fall-through tail needs an explicit transfer:
					// the dispatch loop's implicit fall-through uses
					// the BASE block's end address, not this trace's.
					// The synthetic jump is no guest instruction, so it
					// costs no fuel.
					uops = append(uops, uop.Uop{
						Kind: uop.KindJmp, Target: b.end,
						EIP: b.end, Next: b.end, Cost: 0,
					})
				}
			}
			break
		}

		switch {
		case repl != nil:
			uops = append(uops, raw[:len(raw)-1]...)
			uops = append(uops, *repl)
			if term.Kind == uop.KindCall {
				callRets = append(callRets, term.Next)
			}
		case term.Kind == uop.KindJmp:
			// The jump dissolves into the trace; a NOP keeps its one-
			// instruction fuel cost and trap-window accounting.
			uops = append(uops, raw[:len(raw)-1]...)
			uops = append(uops, uop.Uop{
				Kind: uop.KindNop, EIP: term.EIP, Next: term.Next, Cost: 1,
			})
		default: // fall-through into the next block
			uops = append(uops, raw...)
		}
		cur = next
	}

	if blocks < 2 {
		return // nothing grew; the base block is already optimal
	}

	cost := uop.Cost(uops)
	us, ost := uop.Optimize(uops, v.optCfg)
	v.stats.UopsFused += ost.UopsFused
	v.stats.FlagsElided += ost.FlagsElided

	// Number the guards: each conditional guard gets its own exit chain
	// slot, each return guard its own indirect inline cache.
	guards, rets := sbNumberSlots(us)

	sb := &block{uops: us, end: lastEnd, cost: cost}
	entry.sb = &bref{
		b:        sb,
		owner:    entry,
		sbChains: make([]*bref, guards),
		sbInd:    make([]sbIndEntry, rets),
		sbTried:  true, // never form a superblock from a superblock
	}
	entry.sbForms++
	v.stats.SuperblocksFormed++
}
