package router

import (
	"fmt"
	"testing"
)

func synthBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7788", i+1)
	}
	return out
}

// Rendezvous hashing's whole pitch is statistical balance with zero
// coordination: across 8 synthetic backends every shard's share of
// 20k keys must land within ±15% of fair.
func TestRingBalance(t *testing.T) {
	const backends, keys = 8, 20000
	r := NewRing(synthBackends(backends))
	counts := make(map[string]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.Home(fmt.Sprintf("decoder\x00%d", i))]++
	}
	if len(counts) != backends {
		t.Fatalf("only %d of %d backends ever ranked first", len(counts), backends)
	}
	fair := float64(keys) / backends
	for id, n := range counts {
		if dev := (float64(n) - fair) / fair; dev < -0.15 || dev > 0.15 {
			t.Errorf("backend %s holds %d keys (%.1f%% from fair %g)", id, n, 100*dev, fair)
		}
	}
}

// Minimal movement is what the snapshot caches depend on: removing one
// member may move only the keys that member owned (each to its old
// second choice), and re-adding it must restore the original map
// exactly — a rejoining shard's cache is still warm for its old keys.
func TestRingMinimalMovement(t *testing.T) {
	const keys = 5000
	ids := synthBackends(8)
	r := NewRing(ids)
	victim := ids[3]

	home := make(map[string]string, keys)
	second := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		rank := r.Rank(k)
		home[k] = rank[0]
		second[k] = rank[1]
	}

	var without []string
	for _, id := range ids {
		if id != victim {
			without = append(without, id)
		}
	}
	r.SetBackends(without)
	moved := 0
	for k, h := range home {
		got := r.Home(k)
		if h != victim {
			if got != h {
				t.Fatalf("key %s moved %s -> %s though its home never left", k, h, got)
			}
			continue
		}
		moved++
		if got != second[k] {
			t.Fatalf("orphaned key %s went to %s, want its old second choice %s", k, got, second[k])
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; balance test should have caught this")
	}

	r.SetBackends(ids)
	for k, h := range home {
		if got := r.Home(k); got != h {
			t.Fatalf("key %s did not remap back (%s, want %s)", k, got, h)
		}
	}
}

// Rank is a stable permutation of the member set with Home as its head.
func TestRingRankProperties(t *testing.T) {
	ids := synthBackends(5)
	r := NewRing(ids)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		rank := r.Rank(k)
		if len(rank) != len(ids) {
			t.Fatalf("rank size %d, want %d", len(rank), len(ids))
		}
		seen := make(map[string]bool, len(rank))
		for _, id := range rank {
			if seen[id] {
				t.Fatalf("rank for %s repeats %s", k, id)
			}
			seen[id] = true
		}
		if rank[0] != r.Home(k) {
			t.Fatalf("Home disagrees with Rank[0] for %s", k)
		}
		again := r.Rank(k)
		for i := range rank {
			if rank[i] != again[i] {
				t.Fatalf("rank for %s not stable", k)
			}
		}
	}
}
