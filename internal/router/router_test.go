package router

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeShard is a synthetic backend: a real HTTP server with a proper
// /readyz plus a swappable catch-all handler, so failover semantics
// can be exercised without paying for real decode work.
type fakeShard struct {
	ts      *httptest.Server
	id      string
	ready   atomic.Bool
	hits    atomic.Int64
	handler atomic.Value // http.HandlerFunc
}

func newFakeShard(t *testing.T, h http.HandlerFunc) *fakeShard {
	t.Helper()
	f := &fakeShard{}
	f.ready.Store(true)
	f.handler.Store(h)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !f.ready.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]bool{"ready": f.ready.Load()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		f.handler.Load().(http.HandlerFunc)(w, r)
	})
	f.ts = httptest.NewServer(mux)
	f.id = strings.TrimPrefix(f.ts.URL, "http://")
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeShard) set(h http.HandlerFunc) { f.handler.Store(h) }

// newTestRouter assembles a router over the shards with test-speed
// knobs; hedging off unless the test turns it on.
func newTestRouter(t *testing.T, mut func(*Config), shards ...*fakeShard) (*Router, *httptest.Server) {
	t.Helper()
	ids := make([]string, len(shards))
	for i, f := range shards {
		ids[i] = f.id
	}
	cfg := Config{
		Backends:     ids,
		RetryBackoff: 2 * time.Millisecond,
		HedgeDelay:   -1,
		Health: HealthConfig{
			Threshold:    3,
			Backoff:      50 * time.Millisecond,
			MaxBackoff:   400 * time.Millisecond,
			PollInterval: time.Hour, // in-band signals only, unless a test opts in
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

// bodyHomedOn searches for a request body whose routing key ranks the
// target backend first (bodies that don't parse as archives key on
// their own SHA-256, so any byte tweak reshuffles the ranking).
func bodyHomedOn(t *testing.T, rt *Router, target string) []byte {
	t.Helper()
	for i := 0; i < 100000; i++ {
		body := []byte(fmt.Sprintf("synthetic payload %d", i))
		sum := sha256.Sum256(body)
		if rt.ring.Home("archive\x00"+hex.EncodeToString(sum[:])) == target {
			return body
		}
	}
	t.Fatal("no body found homing on target backend")
	return nil
}

func postRouter(t *testing.T, url string, body []byte) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Post(url+"/v1/extract?entry=doc.txt", "application/octet-stream", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	out, rerr := io.ReadAll(resp.Body)
	return resp, out, rerr
}

// The router stamps attribution and routes deterministically: the same
// body lands on the same (home) shard every time, and only there.
func TestProxyRoutesByKey(t *testing.T) {
	echo := func(tag string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, tag) }
	}
	a, b, c := newFakeShard(t, echo("a")), newFakeShard(t, echo("b")), newFakeShard(t, echo("c"))
	rt, ts := newTestRouter(t, nil, a, b, c)

	body := bodyHomedOn(t, rt, b.id)
	for i := 0; i < 3; i++ {
		resp, out, err := postRouter(t, ts.URL, body)
		if err != nil || resp.StatusCode != http.StatusOK || string(out) != "b" {
			t.Fatalf("round %d: status %d body %q err %v, want 200 %q", i, resp.StatusCode, out, err, "b")
		}
		if got := resp.Header.Get("X-Vxa-Shard"); got != b.id {
			t.Fatalf("X-Vxa-Shard = %q, want %q", got, b.id)
		}
	}
	if a.hits.Load() != 0 || c.hits.Load() != 0 || b.hits.Load() != 3 {
		t.Fatalf("hit spread a=%d b=%d c=%d, want 0/3/0", a.hits.Load(), b.hits.Load(), c.hits.Load())
	}
}

// A backend that dies before producing a single response byte is a
// clean failover: the client sees a 200 byte-identical to what the
// healthy shard serves directly, with no visible hiccup.
func TestPreFirstByteFailoverIsByteIdentical(t *testing.T) {
	payload := strings.Repeat("the decoded payload line\n", 512)
	dead := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // connection cut, zero bytes sent
	})
	alive := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	})
	rt, ts := newTestRouter(t, nil, dead, alive)

	body := bodyHomedOn(t, rt, dead.id)
	resp, out, err := postRouter(t, ts.URL, body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d err %v, want clean 200", resp.StatusCode, err)
	}
	if string(out) != payload {
		t.Fatalf("failover response differs from the healthy shard's bytes (%d vs %d bytes)", len(out), len(payload))
	}
	if got := resp.Header.Get("X-Vxa-Shard"); got != alive.id {
		t.Fatalf("X-Vxa-Shard = %q, want the shard that actually answered (%q)", got, alive.id)
	}
	if dead.hits.Load() != 1 {
		t.Fatalf("dead shard hit %d times, want exactly 1 attempt", dead.hits.Load())
	}
	if m := rt.MetricsSnapshot(); m.Retries != 1 {
		t.Fatalf("retries = %d, want 1", m.Retries)
	}
}

// Once the first response byte has been forwarded the response is
// committed: a mid-stream backend death truncates the client's stream
// honestly — it must NEVER be spliced onto another shard's bytes.
func TestMidStreamKillTruncatesNeverSplices(t *testing.T) {
	chunk := strings.Repeat("x", 48<<10)
	dying := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, chunk)
		w.(http.Flusher).Flush()
		time.Sleep(30 * time.Millisecond) // let the router commit
		panic(http.ErrAbortHandler)
	})
	spare := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "SPLICED")
	})
	rt, ts := newTestRouter(t, nil, dying, spare)

	body := bodyHomedOn(t, rt, dying.id)
	resp, out, err := postRouter(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want the committed 200", resp.StatusCode)
	}
	if err == nil {
		t.Fatal("body read completed cleanly; want an honest truncation error")
	}
	if len(out) == 0 || strings.Contains(string(out), "SPLICED") {
		t.Fatalf("got %d bytes (spliced=%v); want a strict prefix of the dying shard's stream",
			len(out), strings.Contains(string(out), "SPLICED"))
	}
	if spare.hits.Load() != 0 {
		t.Fatal("router consulted another shard after committing — splice hazard")
	}
	if m := rt.MetricsSnapshot(); m.Truncations != 1 {
		t.Fatalf("truncations = %d, want 1", m.Truncations)
	}
}

// A shedding shard (503 + Retry-After) fails over transparently, and
// the Retry-After holds the whole backend down: the next request for a
// key homed there skips it without another wasted wire hit.
func TestShedFailsOverAndHoldsDown(t *testing.T) {
	shedding := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	healthy := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	rt, ts := newTestRouter(t, nil, shedding, healthy)

	body := bodyHomedOn(t, rt, shedding.id)
	for i := 0; i < 2; i++ {
		resp, out, err := postRouter(t, ts.URL, body)
		if err != nil || resp.StatusCode != http.StatusOK || string(out) != "ok" {
			t.Fatalf("round %d: status %d body %q err %v", i, resp.StatusCode, out, err)
		}
	}
	if n := shedding.hits.Load(); n != 1 {
		t.Fatalf("shedding shard hit %d times; the hold-down should have spared it the second", n)
	}
}

// With every shard declining, the shard's own backpressure passes
// through: the client sees the 503 with its Retry-After, and once the
// hold-downs cover the fleet the router sheds locally without touching
// the wire, deriving its own Retry-After hint.
func TestAllShedForwardsBackpressure(t *testing.T) {
	shed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	a, b := newFakeShard(t, shed), newFakeShard(t, shed)
	rt, ts := newTestRouter(t, nil, a, b)

	resp, _, _ := postRouter(t, ts.URL, []byte("whatever"))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("status %d Retry-After %q, want forwarded 503 + Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	wireHits := a.hits.Load() + b.hits.Load()
	if wireHits != 2 {
		t.Fatalf("%d wire hits, want one attempt per shard", wireHits)
	}

	resp, _, _ = postRouter(t, ts.URL, []byte("whatever else"))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("held-down fleet: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if a.hits.Load()+b.hits.Load() != wireHits {
		t.Fatal("router touched held-down shards")
	}
	if m := rt.MetricsSnapshot(); m.NoBackend != 1 {
		t.Fatalf("no_backend = %d, want 1", m.NoBackend)
	}
}

// A 521 is decoder-scoped: the router retries the request elsewhere
// and counts a breaker failure, but does NOT hold the shard down —
// other decoders' keys keep flowing there.
func TestQuarantineRetriesWithoutBackendHoldDown(t *testing.T) {
	quarantined := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(521)
	})
	healthy := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	rt, ts := newTestRouter(t, nil, quarantined, healthy)

	body := bodyHomedOn(t, rt, quarantined.id)
	for i := 0; i < 2; i++ {
		resp, out, err := postRouter(t, ts.URL, body)
		if err != nil || resp.StatusCode != http.StatusOK || string(out) != "ok" {
			t.Fatalf("round %d: status %d body %q err %v", i, resp.StatusCode, out, err)
		}
	}
	if n := quarantined.hits.Load(); n != 2 {
		t.Fatalf("quarantining shard hit %d times, want 2 — a 521 must not hold the backend down", n)
	}
	if !rt.health.usable(quarantined.id) {
		t.Fatal("backend unusable after two 521s; only the breaker threshold may take it out")
	}
}

// With every shard quarantining the decoder, the 521 itself passes
// through with its Retry-After — the client-visible taxonomy stays
// intact through the extra hop.
func TestAllQuarantinedForwards521(t *testing.T) {
	q := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(521)
	}
	a, b := newFakeShard(t, q), newFakeShard(t, q)
	_, ts := newTestRouter(t, nil, a, b)
	resp, _, _ := postRouter(t, ts.URL, []byte("poisoned"))
	if resp.StatusCode != 521 || resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("status %d Retry-After %q, want 521/%q", resp.StatusCode, resp.Header.Get("Retry-After"), "7")
	}
}

// A straggling home shard gets hedged: after the hedge delay a second
// attempt races on the next-ranked shard and its answer wins while the
// straggler is canceled.
func TestHedgeWinsOverStraggler(t *testing.T) {
	slow := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // hedging cancels the loser
			return
		case <-time.After(2 * time.Second):
		}
		io.WriteString(w, "slow")
	})
	fast := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "fast")
	})
	rt, ts := newTestRouter(t, func(c *Config) { c.HedgeDelay = 20 * time.Millisecond }, slow, fast)

	body := bodyHomedOn(t, rt, slow.id)
	start := time.Now()
	resp, out, err := postRouter(t, ts.URL, body)
	if err != nil || resp.StatusCode != http.StatusOK || string(out) != "fast" {
		t.Fatalf("status %d body %q err %v, want hedged 200 %q", resp.StatusCode, out, err, "fast")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged request took %v; the straggler was not raced", elapsed)
	}
	if m := rt.MetricsSnapshot(); m.Hedges != 1 || m.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", m.Hedges, m.HedgeWins)
	}
}

// Consecutive transport failures trip the backend's breaker; once the
// backend returns, the half-open probe admits one request and its
// success closes the breaker again. (The readyz poller is parked at an
// hour here, so everything moves through the in-band signals.)
func TestBreakerTripsAndRecovers(t *testing.T) {
	// Reserve an address, then leave it dark.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cfg := Config{
		Backends:     []string{addr},
		RetryBackoff: time.Millisecond,
		HedgeDelay:   -1,
		Health: HealthConfig{
			Threshold:    3,
			Backoff:      30 * time.Millisecond,
			MaxBackoff:   time.Second,
			PollInterval: time.Hour,
		},
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, _, _ := postRouter(t, ts.URL, []byte("x"))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("dark backend round %d: status %d, want 503", i, resp.StatusCode)
		}
	}
	if rt.health.usable(addr) {
		t.Fatal("breaker still closed after threshold consecutive dial failures")
	}

	// The backend comes back on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "back")
	})}
	go hs.Serve(ln2)
	defer hs.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out, err := postRouter(t, ts.URL, []byte("x"))
		if err == nil && resp.StatusCode == http.StatusOK && string(out) == "back" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: status %d err %v", resp.StatusCode, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	m := rt.MetricsSnapshot()
	if len(m.Backends) != 1 || m.Backends[0].Trips == 0 || m.Backends[0].ProbeSuccesses == 0 {
		t.Fatalf("breaker accounting %+v, want trips and a successful probe", m.Backends)
	}
}

// The readyz poller takes a draining shard out of rotation without any
// request having to fail first.
func TestPollerRemovesDrainingShard(t *testing.T) {
	a := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "a") })
	b := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "b") })
	rt, ts := newTestRouter(t, func(c *Config) { c.Health.PollInterval = 15 * time.Millisecond }, a, b)

	body := bodyHomedOn(t, rt, a.id)
	a.ready.Store(false)
	deadline := time.Now().Add(3 * time.Second)
	for rt.health.usable(a.id) {
		if time.Now().After(deadline) {
			t.Fatal("poller never noticed the draining shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := a.hits.Load()
	resp, out, err := postRouter(t, ts.URL, body)
	if err != nil || resp.StatusCode != http.StatusOK || string(out) != "b" {
		t.Fatalf("status %d body %q err %v, want failover to b", resp.StatusCode, out, err)
	}
	if a.hits.Load() != before {
		t.Fatal("draining shard still receives traffic")
	}
}

// The router's own control surface: healthz, readyz with drain, and
// both metrics formats.
func TestRouterControlSurface(t *testing.T) {
	a := newFakeShard(t, func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "a") })
	rt, ts := newTestRouter(t, nil, a)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	rt.StartDrain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining readyz: %d Retry-After %q %v", resp.StatusCode, resp.Header.Get("Retry-After"), err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %v", resp.StatusCode, err)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("prom metrics: %d %v", resp.StatusCode, err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"vxrouter_backend_ready", "vxrouter_truncations_total"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("prometheus exposition missing %s:\n%s", want, text)
		}
	}
}
