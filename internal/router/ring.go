// Package router implements vxrouter, the fault-tolerant front end
// over a fleet of vxad shards. Requests are routed by rendezvous
// (highest-random-weight) hashing on the decoder content hash — the
// same content address the shards' snapshot caches are keyed by — so
// every archive embedding a given decoder lands on the shard whose
// SnapCache already holds that decoder's pristine snapshot and warm
// translation cache. Each shard's cache stays hot and small, and when
// the usable set changes (a shard dies, drains, or rejoins) only the
// keys that ranked the lost shard first move; everything else stays
// put.
//
// On top of the ring the router layers per-backend health (readyz
// polling plus in-band outcomes feeding a circuit breaker), bounded
// retries with exponential backoff and jitter across the ring order,
// and latency hedging: a second attempt launched on the next-ranked
// shard once the first has outlived the observed p99, loser canceled.
// Failover is only ever attempted before the first response byte has
// been forwarded; after that a broken stream is truncated honestly,
// never spliced.
package router

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is the rendezvous-hash view of the fleet: an ordered preference
// list per key over a fixed member set. Membership is the configured
// fleet; liveness is the health layer's concern (a dead shard stays a
// member so its keys rendezvous straight back when it returns).
type Ring struct {
	mu  sync.RWMutex
	ids []string
	hb  []uint64 // precomputed member hashes, index-aligned with ids
}

// NewRing builds a ring over the backend ids (order irrelevant).
func NewRing(ids []string) *Ring {
	r := &Ring{}
	r.SetBackends(ids)
	return r
}

// SetBackends replaces the member set.
func (r *Ring) SetBackends(ids []string) {
	hb := make([]uint64, len(ids))
	for i, id := range ids {
		hb[i] = hash64(id)
	}
	r.mu.Lock()
	r.ids = append([]string(nil), ids...)
	r.hb = hb
	r.mu.Unlock()
}

// Backends returns the member set.
func (r *Ring) Backends() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.ids...)
}

// Rank returns every member ordered by descending rendezvous score for
// key: element 0 is the key's home shard, element 1 the first failover
// choice, and so on. The order is stable for a fixed member set, and
// removing one member deletes one element from every key's ranking
// without reordering the rest — the minimal-movement property the
// snapshot caches depend on.
func (r *Ring) Rank(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	hk := hash64(key)
	type scored struct {
		id    string
		score uint64
	}
	ss := make([]scored, len(r.ids))
	for i, id := range r.ids {
		ss[i] = scored{id: id, score: mix64(r.hb[i] ^ hk)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].id < ss[j].id // total order even on (vanishing) score ties
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.id
	}
	return out
}

// Home returns the key's top-ranked member ("" on an empty ring).
func (r *Ring) Home(key string) string {
	rank := r.Rank(key)
	if len(rank) == 0 {
		return ""
	}
	return rank[0]
}

// hash64 hashes a string to 64 bits (FNV-1a; mix64 supplies the
// avalanche FNV lacks in its low bits).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection, so
// per-(key,member) scores behave as independent uniform draws — which
// is exactly the rendezvous-hashing balance argument.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
