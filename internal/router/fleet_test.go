package router

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vxa/internal/core"
	"vxa/internal/fault"
	"vxa/internal/server"

	_ "vxa/internal/codec/deflate"
)

// shardProc is one live vxad shard in the test fleet, with enough
// state recorded to kill it abruptly and rebind a replacement on the
// same address — the router must see the same backend come back.
type shardProc struct {
	addr string
	id   string
	srv  *server.Server
	hs   *http.Server
}

func startShard(t *testing.T, addr, id string) *shardProc {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("shard %s: %v", id, err)
	}
	p := &shardProc{
		addr: ln.Addr().String(),
		id:   id,
		srv:  server.New(server.Config{MemSize: 16 << 20, ShardID: id}),
	}
	p.hs = &http.Server{Handler: p.srv.Handler()}
	go p.hs.Serve(ln)
	return p
}

// kill cuts the shard dead: listener and all connections closed
// immediately, in-flight streams severed mid-byte. SIGKILL in
// miniature.
func (p *shardProc) kill() {
	p.hs.Close()
	p.srv.Close()
}

func fleetArchive(t *testing.T, tag string) (archive, want []byte) {
	return fleetArchiveKind(t, tag, true)
}

// fleetArchiveKind builds a single-file archive. Compressible content
// embeds the shared deflate decoder, so every such archive keys on one
// decoder hash and homes on one shard (the locality the SnapCache
// wants). Incompressible content is stored without a decoder and keys
// on the archive's own hash — which is how the soak gets keys spread
// across the whole fleet.
func fleetArchiveKind(t *testing.T, tag string, compressible bool) (archive, want []byte) {
	t.Helper()
	if compressible {
		want = bytes.Repeat([]byte("fleet payload "+tag+" line of compressible text\n"), 200)
	} else {
		want = make([]byte, 8<<10)
		x := hash64(tag) | 1
		for i := range want {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			want[i] = byte(x)
		}
	}
	var buf bytes.Buffer
	w := core.NewWriter(&buf, core.WriterOptions{})
	if err := w.AddFile("doc.txt", want, 0644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// shardFor posts one archive through the router and returns which
// shard answered (via the X-Vxa-Shard header vxad stamps).
func shardFor(t *testing.T, routerURL string, archive []byte) (string, int) {
	t.Helper()
	resp, err := http.Post(routerURL+"/v1/extract?entry=doc.txt", "application/octet-stream", bytes.NewReader(archive))
	if err != nil {
		t.Fatalf("probe post: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.Header.Get(server.ShardHeader), resp.StatusCode
}

// TestFleetChaosSoak is the acceptance scenario for the fleet: three
// real vxad shards behind the router, 5% injected dial/read faults,
// one shard SIGKILLed and restarted mid-soak — and every single
// request must end in a sanctioned state: a 200 whose bytes match the
// archive exactly, a 503/521 carrying Retry-After, or an honest
// truncation (committed 200 whose stream errors out). Keys must remap
// off the dead shard and remap back after it returns, and the router's
// metrics must stay coherent with what the clients observed.
func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet soak")
	}
	shards := []*shardProc{
		startShard(t, "127.0.0.1:0", "s0"),
		startShard(t, "127.0.0.1:0", "s1"),
		startShard(t, "127.0.0.1:0", "s2"),
	}
	addrs := make([]string, len(shards))
	for i, s := range shards {
		addrs[i] = s.addr
	}
	rt, err := New(Config{
		Backends:     addrs,
		RetryBackoff: 2 * time.Millisecond,
		Health: HealthConfig{
			Threshold:    3,
			Backoff:      40 * time.Millisecond,
			MaxBackoff:   300 * time.Millisecond,
			PollInterval: 25 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	routerHS := &http.Server{Handler: rt}
	go routerHS.Serve(routerLn)
	defer routerHS.Close()
	routerURL := "http://" + routerLn.Addr().String()

	// Distinct archives spread keys across the fleet; find one homed on
	// the shard we are going to kill, to pin the remap/remap-back story.
	type workItem struct{ archive, want []byte }
	var work []workItem
	var victimItem *workItem
	victim := shards[1]
	// One compressible archive exercises real decode work (it homes
	// wherever the shared deflate decoder's hash lands); stored archives
	// key on their own content hash and spread across the fleet.
	a, wnt := fleetArchiveKind(t, "compressible", true)
	work = append(work, workItem{a, wnt})
	for i := 0; i < 64 && (len(work) < 7 || victimItem == nil); i++ {
		a, wnt := fleetArchiveKind(t, fmt.Sprintf("%d", i), false)
		item := workItem{a, wnt}
		home, status := shardFor(t, routerURL, a)
		if status != http.StatusOK {
			t.Fatalf("warmup probe: status %d", status)
		}
		if home == victim.id && victimItem == nil {
			victimItem = &item
		}
		if len(work) < 7 {
			work = append(work, item)
		}
	}
	if victimItem == nil {
		t.Fatal("no archive homed on the victim shard; balance test should have caught this")
	}

	// 5% faults on exactly the two new backend-facing points.
	fault.Arm(fault.Config{
		Seed:   7,
		Rate:   0.05,
		Points: 1<<fault.BackendDial | 1<<fault.BackendRead,
	})
	defer fault.Disarm()

	var (
		oks, sheds, truncations, clientErrs atomic.Uint64
		responses                           atomic.Uint64
	)
	const workers, perWorker = 4, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < perWorker; i++ {
				item := work[(w+i)%len(work)]
				resp, err := client.Post(routerURL+"/v1/extract?entry=doc.txt", "application/octet-stream", bytes.NewReader(item.archive))
				if err != nil {
					// The router itself is on loopback and never dies:
					// a transport error here is unsanctioned.
					clientErrs.Add(1)
					t.Errorf("worker %d req %d: transport error to router: %v", w, i, err)
					continue
				}
				responses.Add(1)
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK && rerr == nil:
					if !bytes.Equal(body, item.want) {
						t.Errorf("worker %d req %d: 200 with wrong bytes (%d vs %d) — splice or corruption", w, i, len(body), len(item.want))
					}
					oks.Add(1)
				case resp.StatusCode == http.StatusOK && rerr != nil:
					// Honest truncation: the committed stream was cut, and
					// what did arrive must be a strict prefix of the true
					// bytes — never spliced, never reordered. (The cut can
					// land on the very last read, after every payload byte
					// but before the terminating chunk; still sanctioned,
					// because the client knows the stream did not finish.)
					if !bytes.HasPrefix(item.want, body) {
						t.Errorf("worker %d req %d: truncated stream is not a prefix of the true bytes (%d bytes)", w, i, len(body))
					}
					truncations.Add(1)
				case server.IsShedStatus(resp.StatusCode):
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("worker %d req %d: shed %d without Retry-After", w, i, resp.StatusCode)
					}
					sheds.Add(1)
				default:
					t.Errorf("worker %d req %d: unsanctioned outcome: status %d err %v body %.80q",
						w, i, resp.StatusCode, rerr, body)
				}
				time.Sleep(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}

	// Mid-soak: kill the victim abruptly, verify its keys remap, then
	// bring it back on the same address.
	time.Sleep(150 * time.Millisecond)
	victim.kill()
	time.Sleep(200 * time.Millisecond)
	if home, status := shardFor(t, routerURL, victimItem.archive); status == http.StatusOK && home == victim.id {
		t.Errorf("request landed on the dead shard %s", victim.id)
	}
	replacement := startShard(t, victim.addr, victim.id)
	defer replacement.kill()

	wg.Wait()
	fault.Disarm()

	if oks.Load() == 0 {
		t.Fatal("soak produced zero clean 200s")
	}
	t.Logf("soak: %d ok, %d shed, %d truncated, %d client errors",
		oks.Load(), sheds.Load(), truncations.Load(), clientErrs.Load())

	// Remap-back: with the shard returned and its breaker probed, the
	// victim's keys must land on it again — the same identity, the same
	// address, the warm path restored.
	deadline := time.Now().Add(10 * time.Second)
	for {
		home, status := shardFor(t, routerURL, victimItem.archive)
		if status == http.StatusOK && home == victim.id {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("keys never remapped back to the restarted shard (last: home=%q status=%d)", home, status)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Metrics coherence: every client-visible response was counted
	// exactly once in the status counters, the kill produced retries,
	// and per-backend routed counts cover at least the responses.
	m := rt.MetricsSnapshot()
	var statusSum uint64
	for _, n := range m.Statuses {
		statusSum += n
	}
	// The probe requests above also pass through the router; count them.
	if statusSum < responses.Load() {
		t.Fatalf("status counters (%d) lost responses (clients saw %d)", statusSum, responses.Load())
	}
	if m.Retries == 0 {
		t.Fatal("a mid-soak SIGKILL produced zero retries")
	}
	if m.Requests < statusSum {
		t.Fatalf("routed attempts (%d) below responses (%d)", m.Requests, statusSum)
	}
	// >= because the mid-soak probe requests can truncate too (their
	// bodies are discarded unchecked).
	if m.Truncations < truncations.Load() {
		t.Fatalf("router counted %d truncations, clients saw %d", m.Truncations, truncations.Load())
	}
	st := fault.Stats()
	var injected uint64
	for _, p := range st.Points {
		if p.Point == "dial" || p.Point == "netread" {
			injected += p.Injected
		}
	}
	if injected == 0 {
		t.Fatal("fault injection never fired; the soak proved nothing")
	}

	for _, s := range []*shardProc{shards[0], shards[2]} {
		s.kill()
	}
}

// Routing keys come from decoder content: archives with the same
// embedded decoder land on the same shard (SnapCache locality), and
// /v1/decode keys on the codec name.
func TestFleetRoutingLocality(t *testing.T) {
	s0 := startShard(t, "127.0.0.1:0", "l0")
	s1 := startShard(t, "127.0.0.1:0", "l1")
	s2 := startShard(t, "127.0.0.1:0", "l2")
	defer s0.kill()
	defer s1.kill()
	defer s2.kill()
	rt, err := New(Config{
		Backends:   []string{s0.addr, s1.addr, s2.addr},
		HedgeDelay: -1,
		Health:     HealthConfig{PollInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := &http.Server{Handler: rt}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts.Serve(ln)
	defer ts.Close()
	url := "http://" + ln.Addr().String()

	// The same archive, posted to different endpoints, always lands on
	// one shard: entries/extract/verify share the routing key.
	archive, want := fleetArchive(t, "locality")
	var homes []string
	for _, ep := range []string{"/v1/entries", "/v1/extract?entry=doc.txt", "/v1/verify"} {
		resp, err := http.Post(url+ep, "application/octet-stream", bytes.NewReader(archive))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %.120s", ep, resp.StatusCode, body)
		}
		if ep == "/v1/extract?entry=doc.txt" && !bytes.Equal(body, want) {
			t.Fatalf("%s: wrong bytes through the router", ep)
		}
		homes = append(homes, resp.Header.Get(server.ShardHeader))
	}
	for _, h := range homes[1:] {
		if h != homes[0] {
			t.Fatalf("same archive scattered across shards: %v", homes)
		}
	}

	// Raw decode keys on the codec: all deflate work shares a shard.
	payload := deflateCompress(t, want)
	var decodeHomes []string
	for i := 0; i < 3; i++ {
		resp, err := http.Post(url+"/v1/decode?codec=deflate", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decode: status %d: %.120s", resp.StatusCode, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatal("decode through the router returned wrong bytes")
		}
		decodeHomes = append(decodeHomes, resp.Header.Get(server.ShardHeader))
	}
	for _, h := range decodeHomes[1:] {
		if h != decodeHomes[0] {
			t.Fatalf("codec-keyed decodes scattered: %v", decodeHomes)
		}
	}
}

func deflateCompress(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
