package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"vxa/internal/server"
)

// Per-backend health. Two signals gate routing to a shard:
//
//   - The readyz verdict, refreshed by a background poller: a shard
//     that reports draining, open breakers or sustained shedding (or
//     that cannot be reached at all) leaves the usable set until it
//     reports ready again. This is what makes shard drain a non-event
//     — vxad flips /readyz before its listener closes, the poller sees
//     it, and the shard's keys move before a single request can strand
//     on a closing socket.
//
//   - In-band outcomes feeding a circuit breaker with the same shape
//     as the vmpool decoder breaker: consecutive counted failures
//     (dial/transport errors and 503/521 responses) trip it open,
//     requests then skip the backend until an exponential-backoff
//     half-open probe admits one and its success closes the breaker.
//     Additionally a 503's Retry-After is honored as a hold-down: the
//     shard said "not before T", so until T it is simply not a
//     candidate. (A 521's Retry-After is decoder-scoped, not
//     shard-scoped, and deliberately does NOT hold the whole backend —
//     one poisoned decoder must not evict a healthy shard from every
//     other key's ring.)
//
// Successes reset the breaker, so under mixed traffic an occasional
// shed never accumulates into a trip; only a consecutive run does.

// HealthConfig tunes the per-backend breaker and the readyz poller.
type HealthConfig struct {
	// Threshold is the consecutive-failure count that opens a backend's
	// breaker. 0 selects DefaultBreakerThreshold; negative disables the
	// breaker (readyz polling and hold-downs still apply).
	Threshold int
	// Backoff is the initial open -> half-open probe delay, doubled per
	// failed probe up to MaxBackoff. Zeros select the defaults.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// PollInterval is the readyz poll period; PollTimeout bounds one
	// probe. Zeros select the defaults.
	PollInterval time.Duration
	PollTimeout  time.Duration

	// now is the clock, swappable by tests. nil means time.Now.
	now func() time.Time
}

// Health defaults.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerBackoff   = 250 * time.Millisecond
	DefaultBreakerMax       = 15 * time.Second
	DefaultPollInterval     = 250 * time.Millisecond
	DefaultPollTimeout      = time.Second
)

// ErrNoBackends is wrapped by the 503 the router serves when no usable
// backend remains for a key (all dead, draining, held down or open).
var ErrNoBackends = errors.New("router: no usable backend")

// backendState is one shard's health record.
type backendState struct {
	id string

	mu          sync.Mutex
	ready       bool // last readyz verdict (optimistic before the first poll)
	state       breakerState
	consecutive int
	backoff     time.Duration
	retryAt     time.Time // open: next half-open probe admission
	holdUntil   time.Time // Retry-After hold-down
	trips       uint64
	probes      uint64
	probeOKs    uint64
}

type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int32(s))
}

// healthSet tracks every backend.
type healthSet struct {
	cfg HealthConfig
	m   map[string]*backendState
}

func newHealthSet(cfg HealthConfig, ids []string) *healthSet {
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultBreakerThreshold
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBreakerBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultBreakerMax
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = DefaultPollTimeout
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	h := &healthSet{cfg: cfg, m: make(map[string]*backendState, len(ids))}
	for _, id := range ids {
		// Optimistic start: a router boots routable and lets the first
		// poll (or the first in-band failure) correct it, rather than
		// shedding everything until the poller has been around once.
		h.m[id] = &backendState{id: id, ready: true, backoff: cfg.Backoff}
	}
	return h
}

// acquire decides whether a request may be routed to the backend right
// now. nil means go (and, when the breaker was open with its backoff
// elapsed, the caller just became the half-open probe); an error names
// the reason the backend is not a candidate. Mirrors vmpool's
// Health.Allow: an admitted probe advances retryAt immediately, so a
// probe whose outcome is never reported cannot wedge the breaker.
func (h *healthSet) acquire(id string) error {
	b := h.m[id]
	if b == nil {
		return fmt.Errorf("router: unknown backend %q", id)
	}
	now := h.cfg.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ready {
		return fmt.Errorf("router: backend %s not ready", id)
	}
	if now.Before(b.holdUntil) {
		return fmt.Errorf("router: backend %s held down for %v", id, b.holdUntil.Sub(now).Round(time.Millisecond))
	}
	if h.cfg.Threshold < 0 || b.state == breakerClosed {
		return nil
	}
	if b.state == breakerOpen && !now.Before(b.retryAt) {
		b.state = breakerHalfOpen
		b.retryAt = now.Add(b.backoff)
		b.probes++
		return nil
	}
	return fmt.Errorf("router: backend %s breaker %s", id, b.state)
}

// reportSuccess files a working response (any response proving the
// shard is alive and functioning, shed or not): the breaker resets and
// closes.
func (h *healthSet) reportSuccess(id string) {
	b := h.m[id]
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probeOKs++
	}
	b.state = breakerClosed
	b.consecutive = 0
	b.backoff = h.cfg.Backoff
}

// reportFailure files a counted failure (dial/transport error, 503,
// 521) and reports whether this one tripped the breaker open.
func (h *healthSet) reportFailure(id string) (opened bool) {
	b := h.m[id]
	if b == nil || h.cfg.Threshold < 0 {
		return false
	}
	now := h.cfg.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case breakerHalfOpen:
		b.backoff = min(2*b.backoff, h.cfg.MaxBackoff)
		b.state = breakerOpen
		b.retryAt = now.Add(b.backoff)
		b.trips++
		return true
	case breakerOpen:
		return false
	default:
		if b.consecutive >= h.cfg.Threshold {
			b.state = breakerOpen
			b.retryAt = now.Add(b.backoff)
			b.trips++
			return true
		}
		return false
	}
}

// holdDown honors a Retry-After: the backend is not a candidate until
// the hold elapses. Never shortens an existing hold.
func (h *healthSet) holdDown(id string, d time.Duration) {
	b := h.m[id]
	if b == nil || d <= 0 {
		return
	}
	until := h.cfg.now().Add(d)
	b.mu.Lock()
	if until.After(b.holdUntil) {
		b.holdUntil = until
	}
	b.mu.Unlock()
}

// setReady records a readyz poll verdict.
func (h *healthSet) setReady(id string, ready bool) {
	b := h.m[id]
	if b == nil {
		return
	}
	b.mu.Lock()
	b.ready = ready
	b.mu.Unlock()
}

// usable reports whether acquire would currently admit the backend,
// without admitting a probe (safe to poll; used by readiness).
func (h *healthSet) usable(id string) bool {
	b := h.m[id]
	if b == nil {
		return false
	}
	now := h.cfg.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ready || now.Before(b.holdUntil) {
		return false
	}
	if h.cfg.Threshold < 0 || b.state == breakerClosed {
		return true
	}
	return b.state == breakerOpen && !now.Before(b.retryAt)
}

// retryHint returns the shortest time until some backend could become
// usable again (hold-down expiry or probe admission), for the router's
// own Retry-After when everything is out. Zero means "no timed hint";
// the caller falls back to the flat second.
func (h *healthSet) retryHint() time.Duration {
	now := h.cfg.now()
	var best time.Duration
	for _, b := range h.m {
		b.mu.Lock()
		var cand time.Duration
		if now.Before(b.holdUntil) {
			cand = b.holdUntil.Sub(now)
		}
		if b.state == breakerOpen && now.Before(b.retryAt) {
			if d := b.retryAt.Sub(now); cand == 0 || d < cand {
				cand = d
			}
		}
		b.mu.Unlock()
		if cand > 0 && (best == 0 || cand < best) {
			best = cand
		}
	}
	return best
}

// BackendStats is one backend's health and traffic view in the
// router's metrics document.
type BackendStats struct {
	Backend        string `json:"backend"`
	Ready          bool   `json:"ready"`
	Breaker        string `json:"breaker"`
	HeldDown       bool   `json:"held_down"`
	Trips          uint64 `json:"breaker_trips"`
	Probes         uint64 `json:"breaker_probes"`
	ProbeSuccesses uint64 `json:"breaker_probe_successes"`
	Routed         uint64 `json:"routed"`
	Retries        uint64 `json:"retries"`
	Hedges         uint64 `json:"hedges"`
	HedgeWins      uint64 `json:"hedge_wins"`
	Failures       uint64 `json:"failures"`
}

// stats fills the health half of one backend's row.
func (h *healthSet) stats(id string) BackendStats {
	b := h.m[id]
	if b == nil {
		return BackendStats{Backend: id}
	}
	now := h.cfg.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStats{
		Backend:        id,
		Ready:          b.ready,
		Breaker:        b.state.String(),
		HeldDown:       now.Before(b.holdUntil),
		Trips:          b.trips,
		Probes:         b.probes,
		ProbeSuccesses: b.probeOKs,
	}
}

// poll probes one backend's /readyz once and files the verdict. Any
// transport failure or non-200 is "not ready"; the body is the shard's
// own readiness document and is not second-guessed.
func (rt *Router) poll(ctx context.Context, id string) {
	ctx, cancel := context.WithTimeout(ctx, rt.health.cfg.PollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.backendURL(id)+"/readyz", nil)
	if err != nil {
		rt.health.setReady(id, false)
		return
	}
	resp, err := rt.pollClient(id).Do(req)
	if err != nil {
		rt.health.setReady(id, false)
		return
	}
	defer resp.Body.Close()
	var doc struct {
		Ready bool `json:"ready"`
	}
	ready := resp.StatusCode == http.StatusOK &&
		json.NewDecoder(resp.Body).Decode(&doc) == nil && doc.Ready
	rt.health.setReady(id, ready)
	if !ready {
		// The shard told us when to look again (draining shards answer
		// with Retry-After); honor it like any in-band hold-down so the
		// usable set and the in-band view agree.
		if d, ok := server.ParseRetryAfter(resp.Header); ok {
			rt.health.holdDown(id, d)
		}
	}
}

// pollLoop refreshes every backend's readiness until stop is closed.
func (rt *Router) pollLoop() {
	defer close(rt.pollDone)
	t := time.NewTicker(rt.health.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.pollStop:
			return
		case <-t.C:
		}
		for _, id := range rt.ring.Backends() {
			rt.poll(rt.baseCtx, id)
		}
	}
}
