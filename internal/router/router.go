package router

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"vxa/internal/core"
	"vxa/internal/fault"
	"vxa/internal/obs"
	"vxa/internal/server"
)

// Config configures a Router.
type Config struct {
	// Backends is the fleet: "host:port" addresses or "unix:/path"
	// socket endpoints of vxad shards. Required, at least one.
	Backends []string
	// MaxAttempts bounds attempts per request (first try + retries +
	// hedge combined). 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// RetryBackoff is the base delay before a retry, doubled per attempt
	// with full jitter, capped at 32x. 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// HedgeDelay is how long the first attempt may run before a hedged
	// second attempt launches on the next-ranked shard. 0 means adapt:
	// the router's own observed p99, clamped to [5ms, 1s] (50ms until
	// enough samples exist). Negative disables hedging.
	HedgeDelay time.Duration
	// MaxRequestBytes caps the buffered request body (bodies must be
	// buffered to be replayable across attempts). 0 selects 1 GiB.
	MaxRequestBytes int64
	// Health tunes the per-backend breaker and readyz poller.
	Health HealthConfig
	// Logger receives routing decisions; nil discards.
	Logger *slog.Logger
}

// Routing defaults.
const (
	DefaultMaxAttempts     = 3
	DefaultRetryBackoff    = 10 * time.Millisecond
	DefaultMaxRequestBytes = 1 << 30

	minHedgeDelay  = 5 * time.Millisecond
	maxHedgeDelay  = time.Second
	coldHedgeDelay = 50 * time.Millisecond
	hedgeWarmup    = 50 // latency samples before the p99 is trusted
)

// Router is the vxrouter HTTP front end: an http.Handler that proxies
// the vxad wire surface across the fleet, plus its own /healthz,
// /readyz and /metrics.
type Router struct {
	cfg    Config
	ring   *Ring
	health *healthSet
	mux    *http.ServeMux
	log    *slog.Logger
	start  time.Time

	clients map[string]*http.Client

	baseCtx    context.Context
	baseCancel context.CancelFunc
	pollStop   chan struct{}
	pollDone   chan struct{}
	draining   atomic.Bool

	hist     obs.Histogram // end-to-end latency of responded requests
	routedC  obs.CounterVec
	retryC   obs.CounterVec
	hedgeC   obs.CounterVec
	hedgeWin obs.CounterVec
	failC    obs.CounterVec
	statusC  obs.CounterVec

	truncations atomic.Uint64
	noBackend   atomic.Uint64
	clientGone  atomic.Uint64
}

// New builds a Router over the fleet and starts its readyz poller.
// Callers must Close it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if b == "" {
			return nil, fmt.Errorf("router: empty backend address")
		}
		if seen[b] {
			return nil, fmt.Errorf("router: duplicate backend %q", b)
		}
		seen[b] = true
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		cfg:        cfg,
		ring:       NewRing(cfg.Backends),
		health:     newHealthSet(cfg.Health, cfg.Backends),
		mux:        http.NewServeMux(),
		log:        log,
		start:      time.Now(),
		clients:    make(map[string]*http.Client, len(cfg.Backends)),
		baseCtx:    ctx,
		baseCancel: cancel,
		pollStop:   make(chan struct{}),
		pollDone:   make(chan struct{}),
	}
	for _, id := range cfg.Backends {
		rt.clients[id] = &http.Client{Transport: newTransport(id)}
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/", rt.proxy)
	go rt.pollLoop()
	return rt, nil
}

// Close stops the poller and tears down backend connections. In-flight
// proxied requests are canceled.
func (rt *Router) Close() {
	close(rt.pollStop)
	<-rt.pollDone
	rt.baseCancel()
	for _, c := range rt.clients {
		if t, ok := c.Transport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
	}
}

// StartDrain flips the router's own /readyz to draining so an upstream
// balancer stops sending new work; proxying continues for whatever
// still arrives until the listener closes.
func (rt *Router) StartDrain() { rt.draining.Store(true) }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// newTransport builds the per-backend transport. Both the dial and
// every subsequent response read pass a fault injection point, so the
// chaos harness can exercise exactly the failure modes the retry and
// truncation machinery exists for.
func newTransport(id string) *http.Transport {
	sock, isUnix := strings.CutPrefix(id, "unix:")
	d := &net.Dialer{Timeout: 2 * time.Second}
	return &http.Transport{
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			if err := fault.Inject(fault.BackendDial); err != nil {
				return nil, fmt.Errorf("dial backend %s: %w", id, err)
			}
			if isUnix {
				return d.DialContext(ctx, "unix", sock)
			}
			return d.DialContext(ctx, network, addr)
		},
	}
}

// backendURL returns the scheme+authority prefix for requests to a
// backend. Unix-socket backends get a placeholder authority; their
// transport dials the socket regardless of the addr it is handed.
func (rt *Router) backendURL(id string) string {
	if strings.HasPrefix(id, "unix:") {
		return "http://vxa-unix"
	}
	return "http://" + id
}

func (rt *Router) pollClient(id string) *http.Client { return rt.clients[id] }

// faultBody threads response-body reads through the BackendRead
// injection point, standing in for a backend that dies mid-response.
type faultBody struct{ rc io.ReadCloser }

func (f *faultBody) Read(p []byte) (int, error) {
	if err := fault.Inject(fault.BackendRead); err != nil {
		return 0, err
	}
	return f.rc.Read(p)
}

func (f *faultBody) Close() error { return f.rc.Close() }

// routeKey derives the rendezvous key for a request. The point is
// SnapCache locality: every request that will exercise a given decoder
// should land on the shard whose snapshot cache already holds it, so
// the key is the decoder's content hash whenever the router can
// determine it cheaply (central-directory parse only — no decoding),
// and the archive's content hash otherwise.
func (rt *Router) routeKey(r *http.Request, body []byte) string {
	switch r.URL.Path {
	case "/v1/decode":
		// Raw-stream decode names its built-in codec in the query; all
		// work for one codec shares one decoder line.
		if c := r.URL.Query().Get("codec"); c != "" {
			return "codec\x00" + c
		}
	case "/v1/extract", "/v1/verify", "/v1/entries":
		if key, ok := decoderKey(body, r.URL.Query().Get("entry")); ok {
			return key
		}
	}
	sum := sha256.Sum256(body)
	return "archive\x00" + hex.EncodeToString(sum[:])
}

// decoderKey parses the archive's central directory and returns a key
// on the decoder content hash of the named entry (or, with no name,
// the first entry carrying an embedded decoder). ok=false when the
// container doesn't parse or no entry resolves a decoder hash — the
// caller falls back to the archive hash, which still keys all work on
// identical bytes to one shard.
func decoderKey(body []byte, entryName string) (string, bool) {
	rd, err := core.NewReader(body)
	if err != nil {
		return "", false
	}
	defer rd.Close()
	entries := rd.Entries()
	for i := range entries {
		e := &entries[i]
		if entryName != "" && e.Name != entryName {
			continue
		}
		if h, ok, err := rd.DecoderHash(e); err == nil && ok {
			return "decoder\x00" + hex.EncodeToString(h[:]), true
		}
		if entryName != "" {
			break
		}
	}
	return "", false
}

// hedgeDelay picks how long the primary attempt may run before a
// hedge launches: the configured value, or the router's own observed
// p99 clamped to [5ms, 1s] (a flat 50ms until enough samples exist).
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeDelay != 0 {
		return rt.cfg.HedgeDelay
	}
	if rt.hist.Count() < hedgeWarmup {
		return coldHedgeDelay
	}
	return min(max(rt.hist.Snapshot().Quantile(0.99), minHedgeDelay), maxHedgeDelay)
}

// attemptResult is one backend attempt's outcome. Exactly one of the
// three shapes holds: committed (resp != nil, body open past the first
// chunk), shed (shedStatus != 0, small body captured and connection
// done), or failed (err != nil, nothing usable received).
type attemptResult struct {
	id    string
	hedge bool

	resp  *http.Response
	first []byte
	eof   bool

	shedStatus int
	shedHeader http.Header
	shedBody   []byte

	err error
}

// attempt runs one request against one backend up to the commit point:
// for working responses it reads the first body chunk before reporting
// success, so everything that can go wrong before a single byte would
// reach the client surfaces here, as a retryable failure, and nothing
// after the commit point ever retries.
func (rt *Router) attempt(ctx context.Context, id string, r *http.Request, body []byte) attemptResult {
	res := attemptResult{id: id}
	// Each attempt gets its own bytes.Reader over the shared buffer, so
	// concurrent hedged attempts never share a read cursor.
	req, err := http.NewRequestWithContext(ctx, r.Method, rt.backendURL(id)+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		res.err = err
		rt.health.reportFailure(id)
		return res
	}
	req.Header = r.Header.Clone()
	resp, err := rt.clients[id].Do(req)
	if err != nil {
		res.err = err
		rt.health.reportFailure(id)
		rt.failC.Inc(id)
		return res
	}
	switch resp.StatusCode {
	case http.StatusServiceUnavailable, server.StatusDecoderQuarantined:
		// The shard is alive but declining: a counted breaker failure
		// either way, and for a 503 — a shard-wide condition — the
		// Retry-After additionally holds the whole backend down. A 521's
		// Retry-After is scoped to one quarantined decoder and must not
		// evict the shard from every other key's ring.
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
		rt.health.reportFailure(id)
		rt.failC.Inc(id)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if d, ok := server.ParseRetryAfter(resp.Header); ok {
				rt.health.holdDown(id, d)
			}
		}
		res.shedStatus = resp.StatusCode
		res.shedHeader = resp.Header
		res.shedBody = b
		return res
	}
	// Commit point: pull the first body chunk before declaring this
	// attempt the answer. A backend that accepted the request and died
	// before producing a byte is still a clean, invisible failover.
	fb := &faultBody{rc: resp.Body}
	buf := make([]byte, 32<<10)
	n, rerr := fb.Read(buf)
	for n == 0 && rerr == nil {
		n, rerr = fb.Read(buf)
	}
	if rerr != nil && rerr != io.EOF {
		resp.Body.Close()
		res.err = fmt.Errorf("backend %s: first byte: %w", id, rerr)
		rt.health.reportFailure(id)
		rt.failC.Inc(id)
		return res
	}
	rt.health.reportSuccess(id)
	res.resp = resp
	res.resp.Body = fb
	res.first = buf[:n]
	res.eof = rerr == io.EOF
	return res
}

// proxy buffers the request, ranks the ring for its key, and runs the
// attempt state machine: sequential retries with backoff and jitter
// across the ring order, plus at most one hedged parallel attempt once
// the primary outlives the hedge delay. First committed result wins
// and the loser is canceled.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxRequestBytes+1))
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	if int64(len(body)) > rt.cfg.MaxRequestBytes {
		rt.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", rt.cfg.MaxRequestBytes)
		return
	}
	key := rt.routeKey(r, body)
	rank := rt.ring.Rank(key)

	ctx := r.Context()
	start := time.Now()
	results := make(chan attemptResult, len(rank)+1)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	inflight, launched, cursor := 0, 0, 0
	launch := func(hedge bool) bool {
		for cursor < len(rank) {
			id := rank[cursor]
			cursor++
			if err := rt.health.acquire(id); err != nil {
				continue
			}
			actx, cancel := context.WithCancel(ctx)
			cancels = append(cancels, cancel)
			inflight++
			launched++
			rt.routedC.Inc(id)
			switch {
			case hedge:
				rt.hedgeC.Inc(id)
			case launched > 1:
				rt.retryC.Inc(id)
			}
			go func() {
				res := rt.attempt(actx, id, r, body)
				res.hedge = hedge
				results <- res
			}()
			return true
		}
		return false
	}

	if !launch(false) {
		rt.noBackend.Add(1)
		rt.shedAll(w)
		return
	}

	// A nil channel blocks forever, which is how a negative HedgeDelay
	// disables hedging without a second select shape.
	var hedgeFire <-chan time.Time
	if rt.cfg.HedgeDelay >= 0 {
		hedgeTimer := time.NewTimer(rt.hedgeDelay())
		defer hedgeTimer.Stop()
		hedgeFire = hedgeTimer.C
	}

	var lastShed *attemptResult
	for {
		select {
		case <-ctx.Done():
			// Client gone: nothing to answer; let the drain goroutine
			// reap whatever attempts are still in flight.
			rt.clientGone.Add(1)
			rt.reap(results, inflight)
			return
		case <-hedgeFire:
			if inflight == 1 && launched < rt.cfg.MaxAttempts {
				launch(true)
			}
		case res := <-results:
			inflight--
			if res.resp != nil {
				if res.hedge {
					rt.hedgeWin.Inc(res.id)
				}
				rt.reap(results, inflight)
				rt.hist.Observe(time.Since(start))
				rt.statusC.Inc(statusClass(res.resp.StatusCode))
				rt.forward(w, res)
				return
			}
			if res.shedStatus != 0 {
				lastShed = &res
			}
			if inflight > 0 {
				continue // the hedge partner is still racing
			}
			if launched < rt.cfg.MaxAttempts {
				rt.backoffSleep(ctx, launched)
				if launch(false) {
					continue
				}
			}
			// Out of attempts or out of usable backends.
			rt.hist.Observe(time.Since(start))
			if lastShed != nil {
				rt.forwardShed(w, lastShed)
			} else {
				rt.noBackend.Add(1)
				rt.shedAll(w)
			}
			return
		}
	}
}

// backoffSleep waits the bounded exponential backoff (full jitter)
// before retry number `prior`+1, unless the client gives up first.
func (rt *Router) backoffSleep(ctx context.Context, prior int) {
	d := rt.cfg.RetryBackoff << min(prior-1, 5)
	d = time.Duration(rand.Int64N(int64(d)) + int64(d)/2) // jitter in [d/2, 3d/2)
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// reap closes out still-inflight attempts in the background: their
// contexts are canceled by the caller's deferred cancels only when the
// handler returns, so collect their results and release connections.
func (rt *Router) reap(results chan attemptResult, inflight int) {
	if inflight == 0 {
		return
	}
	go func() {
		for i := 0; i < inflight; i++ {
			res := <-results
			if res.resp != nil {
				res.resp.Body.Close()
			}
		}
	}()
}

// forward streams a committed attempt to the client. Up to the first
// chunk everything was retryable; from here on the response is the
// response, and a mid-stream backend failure is surfaced as an honest
// truncation (connection abort), never a silent splice onto another
// backend's bytes.
func (rt *Router) forward(w http.ResponseWriter, res attemptResult) {
	h := w.Header()
	for k, vs := range res.resp.Header {
		switch k {
		case "Connection", "Transfer-Encoding", "Keep-Alive":
			continue
		}
		h[k] = vs
	}
	if h.Get(server.ShardHeader) == "" {
		h.Set(server.ShardHeader, res.id)
	}
	w.WriteHeader(res.resp.StatusCode)
	if _, err := w.Write(res.first); err != nil {
		res.resp.Body.Close()
		return // client went away; nothing to be honest about
	}
	if !res.eof {
		if _, err := io.Copy(w, res.resp.Body); err != nil {
			res.resp.Body.Close()
			rt.truncations.Add(1)
			rt.log.Warn("mid-stream backend failure, truncating", slog.String("backend", res.id), slog.String("err", err.Error()))
			panic(http.ErrAbortHandler)
		}
	}
	res.resp.Body.Close()
}

// forwardShed relays the last shed response received when every
// attempt came back declining: the client sees the shard's own 503/521
// with its Retry-After, exactly as if it had spoken to the shard.
func (rt *Router) forwardShed(w http.ResponseWriter, res *attemptResult) {
	rt.statusC.Inc(statusClass(res.shedStatus))
	h := w.Header()
	for _, k := range []string{"Retry-After", "Content-Type", server.ShardHeader} {
		if v := res.shedHeader.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	if h.Get(server.ShardHeader) == "" {
		h.Set(server.ShardHeader, res.id)
	}
	w.WriteHeader(res.shedStatus)
	w.Write(res.shedBody)
}

// shedAll answers for a fleet with no usable backend: 503 with a
// Retry-After derived from the soonest hold-down expiry or breaker
// probe admission, so well-behaved clients come back exactly when a
// backend could.
func (rt *Router) shedAll(w http.ResponseWriter) {
	rt.statusC.Inc("503")
	hint := rt.health.retryHint()
	secs := int64(1)
	if hint > 0 {
		secs = int64(math.Ceil(hint.Seconds()))
		if secs < 1 {
			secs = 1
		}
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]string{"error": ErrNoBackends.Error()})
}

// fail answers a request the router itself rejects (oversized body,
// unreadable stream) without consulting the fleet.
func (rt *Router) fail(w http.ResponseWriter, status int, format string, args ...any) {
	rt.statusC.Inc(statusClass(status))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// statusClass buckets statuses for the response counter: the statuses
// with protocol meaning in the vxa taxonomy stay distinct, the rest
// collapse to their class.
func statusClass(status int) string {
	switch status {
	case http.StatusServiceUnavailable:
		return "503"
	case server.StatusDecoderQuarantined:
		return "521"
	case http.StatusGatewayTimeout:
		return "504"
	}
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 400 && status < 500:
		return "4xx"
	case status >= 500:
		return "5xx"
	}
	return "other"
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status   string  `json:"status"`
		UptimeMS float64 `json:"uptime_ms"`
		Backends int     `json:"backends"`
	}{"ok", float64(time.Since(rt.start).Milliseconds()), len(rt.cfg.Backends)})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := !rt.draining.Load()
	var usable int
	for _, id := range rt.ring.Backends() {
		if rt.health.usable(id) {
			usable++
		}
	}
	if usable == 0 {
		ready = false
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
		Usable   int  `json:"usable_backends"`
	}{ready, rt.draining.Load(), usable})
}

// Metrics is the router's point-in-time metrics document.
type Metrics struct {
	UptimeMS    float64           `json:"uptime_ms"`
	Backends    []BackendStats    `json:"backends"`
	Requests    uint64            `json:"requests"`
	Retries     uint64            `json:"retries"`
	Hedges      uint64            `json:"hedges"`
	HedgeWins   uint64            `json:"hedge_wins"`
	Truncations uint64            `json:"truncations"`
	NoBackend   uint64            `json:"no_backend"`
	ClientGone  uint64            `json:"client_gone"`
	Statuses    map[string]uint64 `json:"statuses"`
	Latency     obs.HistStats     `json:"latency"`
}

// MetricsSnapshot assembles the metrics document.
func (rt *Router) MetricsSnapshot() Metrics {
	m := Metrics{
		UptimeMS:    float64(time.Since(rt.start).Milliseconds()),
		Requests:    rt.routedC.Total(),
		Retries:     rt.retryC.Total(),
		Hedges:      rt.hedgeC.Total(),
		HedgeWins:   rt.hedgeWin.Total(),
		Truncations: rt.truncations.Load(),
		NoBackend:   rt.noBackend.Load(),
		ClientGone:  rt.clientGone.Load(),
		Statuses:    rt.statusC.Snapshot(),
		Latency:     rt.hist.Snapshot().Stats(),
	}
	for _, id := range rt.ring.Backends() {
		bs := rt.health.stats(id)
		bs.Routed = rt.routedC.Get(id)
		bs.Retries = rt.retryC.Get(id)
		bs.Hedges = rt.hedgeC.Get(id)
		bs.HedgeWins = rt.hedgeWin.Get(id)
		bs.Failures = rt.failC.Get(id)
		m.Backends = append(m.Backends, bs)
	}
	return m
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		rt.promMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rt.MetricsSnapshot())
}

func (rt *Router) promMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	p.CounterVec("vxrouter_requests_total", "Attempts routed, by backend.", "backend", &rt.routedC)
	p.CounterVec("vxrouter_retries_total", "Retry attempts, by backend.", "backend", &rt.retryC)
	p.CounterVec("vxrouter_hedges_total", "Hedged attempts, by backend.", "backend", &rt.hedgeC)
	p.CounterVec("vxrouter_hedge_wins_total", "Hedged attempts that won, by backend.", "backend", &rt.hedgeWin)
	p.CounterVec("vxrouter_backend_failures_total", "Counted backend failures, by backend.", "backend", &rt.failC)
	p.CounterVec("vxrouter_responses_total", "Responses to clients, by status class.", "class", &rt.statusC)
	p.Counter("vxrouter_truncations_total", "Committed streams truncated by mid-stream backend failure.", nil, float64(rt.truncations.Load()))
	p.Counter("vxrouter_no_backend_total", "Requests shed with no usable backend.", nil, float64(rt.noBackend.Load()))
	p.Counter("vxrouter_client_gone_total", "Requests abandoned by the client mid-route.", nil, float64(rt.clientGone.Load()))
	for _, id := range rt.ring.Backends() {
		bs := rt.health.stats(id)
		ready := 0.0
		if bs.Ready {
			ready = 1
		}
		p.Gauge("vxrouter_backend_ready", "Backend readyz verdict.", map[string]string{"backend": id}, ready)
		p.Counter("vxrouter_breaker_trips_total", "Breaker trips, by backend.", map[string]string{"backend": id}, float64(bs.Trips))
	}
	p.Summary("vxrouter_request_duration_seconds", "End-to-end routed request latency.", nil, rt.hist.Snapshot())
	p.Err()
}
