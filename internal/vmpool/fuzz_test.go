package vmpool

import (
	"bytes"
	"context"
	"io"
	"sync"
	"testing"

	"vxa/internal/codec"
	"vxa/internal/vm"

	_ "vxa/internal/codec/deflate"
)

// fuzzPool shares one pool (and thus one decoder snapshot) across all
// fuzz executions, like a long-running extraction service would.
var (
	fuzzPoolOnce sync.Once
	fuzzPool     *Pool
	fuzzElf      []byte
	fuzzErr      error
)

func fuzzSetup() {
	fuzzPoolOnce.Do(func() {
		c, ok := codec.ByName("deflate")
		if !ok {
			panic("deflate codec not registered")
		}
		fuzzElf, fuzzErr = c.DecoderELF()
		// A small guest keeps per-execution cost down; the deflate
		// decoder fits comfortably.
		fuzzPool = New(Options{VM: vm.Config{MemSize: 8 << 20}})
	})
}

// fuzzFuel bounds each stream tightly so a fuzz input that sends the
// decoder into a long loop costs microseconds, not the default budget.
const fuzzFuel = int64(2) << 20

// FuzzRunStream feeds arbitrary bytes as the encoded stdin stream of a
// pooled archived decoder. Whatever the bytes are, the sandbox contract
// holds: the VM returns an error or a trap — it never panics, and the
// pool stays serviceable for the next stream.
func FuzzRunStream(f *testing.F) {
	fuzzSetup()
	if fuzzErr != nil {
		f.Fatal(fuzzErr)
	}
	// Seeds: a valid deflate stream, a truncation of it, raw garbage.
	c, _ := codec.ByName("deflate")
	var enc bytes.Buffer
	if err := c.Encode(&enc, []byte("the archive decoder stream compress buffer")); err != nil {
		f.Fatal(err)
	}
	f.Add(enc.Bytes())
	f.Add(enc.Bytes()[:enc.Len()/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0xfe, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		lease, err := fuzzPool.Get(context.Background(), "deflate", 0644, func() ([]byte, error) { return fuzzElf, nil })
		if err != nil {
			t.Fatal(err)
		}
		reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(data), io.Discard, nil, fuzzFuel)
		if err != nil {
			lease.Release(false)
			return // decode failure contained by the sandbox: the contract
		}
		lease.Release(reusable)
	})
}
