package vmpool

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"testing"

	"vxa/internal/artifact"
	"vxa/internal/vm"
)

var testVMCfg = vm.Config{MemSize: 4 << 20}

// noBuild is an elf source that must never be invoked — the assertion
// that a request was served from the artifact store.
func noBuild() ([]byte, error) { return nil, errors.New("elf build path reached") }

// entryFootprint reads the resident entry's live snapshot footprint.
func entryFootprint(t *testing.T, c *SnapCache, hash [32]byte, mode uint32) (int64, int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[CacheKey{Hash: hash, Mode: mode}]
	if e == nil || e.snap == nil {
		t.Fatal("entry not resident")
	}
	return e.snap.Footprint(), e.snap.BlockCount()
}

// TestSnapCacheFootprintTracksAbsorb pins the byte-accounting fix:
// AbsorbBlocks grows a snapshot after its entry was sized, and
// Stats().Bytes must follow the live Footprint, not the build-time
// figure the entry was admitted at.
func TestSnapCacheFootprintTracksAbsorb(t *testing.T) {
	echo := compile(t, echoSrc)
	echoHash := HashELF(mustELF(t, echo))
	c := NewSnapCache(SnapCacheConfig{VM: testVMCfg})

	// Build the line without running a stream: the snapshot has no
	// absorbed blocks yet.
	lease, err := c.Get(context.Background(), echoHash, 0644, 0, echo)
	if err != nil {
		t.Fatal(err)
	}
	lease.Release(false)
	buildBytes := c.Stats().Bytes

	// Decode a stream; releasing the lease absorbs the translated
	// blocks into the snapshot, growing its footprint.
	payload := bytes.Repeat([]byte("grow the block cache "), 64)
	cacheStream(t, c, echoHash, 0644, 0, echo, payload, payload)
	live, blocks := entryFootprint(t, c, echoHash, 0644)
	if blocks == 0 {
		t.Fatal("stream absorbed no blocks; test is vacuous")
	}
	if live <= buildBytes {
		t.Fatalf("live footprint %d not larger than build-time %d", live, buildBytes)
	}
	if got := c.Stats().Bytes; got != live {
		t.Fatalf("Stats().Bytes = %d, want live footprint %d (stale build-time size was %d)",
			got, live, buildBytes)
	}
}

// TestSnapCacheSiblingResetFailureReports pins the missing circuit-
// breaker report: when the post-sibling-import spare reset fails, the
// failure must count against the decoder's breaker like every other
// build failure.
func TestSnapCacheSiblingResetFailureReports(t *testing.T) {
	echo := compile(t, echoSrc)
	echoHash := HashELF(mustELF(t, echo))
	c := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Health: HealthConfig{Threshold: 1}})

	// Make the echo line resident under one mode with absorbed blocks,
	// so a second-mode build takes the sibling-import path.
	payload := []byte("warm the sibling")
	cacheStream(t, c, echoHash, 0644, 0, echo, payload, payload)
	if _, blocks := entryFootprint(t, c, echoHash, 0644); blocks == 0 {
		t.Fatal("sibling has no blocks to import; test is vacuous")
	}

	orig := resetSpare
	resetSpare = func(*vm.VM, *vm.Snapshot) error { return errors.New("injected reset failure") }
	defer func() { resetSpare = orig }()

	if _, err := c.Get(context.Background(), echoHash, 0755, 0, echo); err == nil {
		t.Fatal("build with failing spare reset succeeded")
	}
	h := c.Health()
	if h.Failures.Builds == 0 {
		t.Fatalf("health = %+v, want the reset failure counted as a build failure", h)
	}
	// Threshold 1: the single report must have tripped the breaker.
	if !c.Quarantined(echoHash) {
		t.Fatal("breaker did not open after the reported build failure")
	}
}

// TestSnapCacheOrphanBytesVisible pins the third accounting fix: bytes
// pinned by an evicted line with a lease still in flight stay visible
// as OrphanBytes until the last lease releases.
func TestSnapCacheOrphanBytesVisible(t *testing.T) {
	echo := compile(t, echoSrc)
	leaky := compile(t, leakySrc)
	echoHash := HashELF(mustELF(t, echo))
	leakyHash := HashELF(mustELF(t, leaky))

	// 1-byte budget: building the leaky line evicts the echo line.
	c := NewSnapCache(SnapCacheConfig{VM: testVMCfg, MaxBytes: 1})
	lease, err := c.Get(context.Background(), echoHash, 0644, 0, echo)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("pinned by an in-flight lease")
	cacheStream(t, c, leakyHash, 0644, 0, leaky, payload, nil)
	if c.Contains(echoHash, 0644) {
		t.Fatal("echo line still resident; eviction did not happen")
	}

	s := c.Stats()
	if s.OrphanBytes <= 0 {
		t.Fatalf("stats = %+v, want orphan-pinned snapshot bytes visible after eviction", s)
	}
	if s.Bytes < 0 {
		t.Fatalf("resident bytes went negative: %+v", s)
	}

	reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), &bytes.Buffer{}, nil, vm.StreamFuel(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	lease.Release(reusable)
	if s := c.Stats(); s.OrphanBytes != 0 {
		t.Fatalf("stats = %+v, want orphan bytes released with the last lease", s)
	}
}

// TestSnapCacheArtifactRoundTrip is the cross-process story: one cache
// builds from the ELF and persists; a fresh cache (a new process in
// disguise) serves the same decoder from the store alone — the ELF
// path is never touched, the golden output hash is unchanged, and the
// persisted uop block cache eliminates re-translation.
func TestSnapCacheArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	echo := compile(t, echoSrc)
	echoHash := HashELF(mustELF(t, echo))
	payload := bytes.Repeat([]byte("persistent artifact round trip "), 32)
	golden := sha256.Sum256(payload) // echo: output == input

	store1, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: store1})
	cacheStream(t, c1, echoHash, 0644, 0, echo, payload, payload)
	_, blocks1 := entryFootprint(t, c1, echoHash, 0644)
	if blocks1 == 0 {
		t.Fatal("no blocks absorbed; disk-warm would be meaningless")
	}
	if n := c1.FlushArtifacts(); n != 1 {
		t.Fatalf("FlushArtifacts wrote %d artifacts, want 1 (grown block cache)", n)
	}
	if s := store1.Stats(); s.Saves < 2 { // build-time save + flush
		t.Fatalf("store stats = %+v, want build save plus flush save", s)
	}

	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: store2})
	lease, err := c2.Get(context.Background(), echoHash, 0644, 0, noBuild)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), &out, nil, vm.StreamFuel(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	built := lease.VM().Stats().BlocksBuilt
	lease.Release(reusable)

	if got := sha256.Sum256(out.Bytes()); got != golden {
		t.Fatalf("disk-warm output hash %x, want %x", got, golden)
	}
	if built != 0 {
		t.Fatalf("disk-warm stream re-translated %d blocks, want 0", built)
	}
	if _, blocks2 := entryFootprint(t, c2, echoHash, 0644); blocks2 != blocks1 {
		t.Fatalf("loaded snapshot carries %d blocks, want %d", blocks2, blocks1)
	}
	if s := store2.Stats(); s.Hits != 1 || s.Fallbacks != 0 {
		t.Fatalf("store stats = %+v, want one clean hit", s)
	}
}

// TestSnapCacheArtifactCorruptionFallsBack: every way the store can be
// wrong — bit rot, truncation, an empty file — must leave the request
// path untouched: the cache silently rebuilds from the ELF, the decode
// output is bit-identical, and the store's fallback counter records
// the event. The rebuild also repairs the store in passing.
func TestSnapCacheArtifactCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	echo := compile(t, echoSrc)
	echoHash := HashELF(mustELF(t, echo))
	payload := bytes.Repeat([]byte("fallback must be invisible "), 16)
	golden := sha256.Sum256(payload)

	seed, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c0 := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: seed})
	cacheStream(t, c0, echoHash, 0644, 0, echo, payload, payload)
	c0.FlushArtifacts()
	path := seed.Path(echoHash, testVMCfg)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := []struct {
		name   string
		mutate func() []byte
	}{
		{"payload bit rot", func() []byte {
			d := append([]byte(nil), pristine...)
			d[len(d)-9] ^= 0x20
			return d
		}},
		{"truncation", func() []byte { return pristine[:len(pristine)/3] }},
		{"empty file", func() []byte { return nil }},
	}
	for _, dm := range damage {
		t.Run(dm.name, func(t *testing.T) {
			if err := os.WriteFile(path, dm.mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			store, err := artifact.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			c := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: store})
			lease, err := c.Get(context.Background(), echoHash, 0644, 0, echo)
			if err != nil {
				t.Fatalf("request failed on a corrupt store: %v", err)
			}
			var out bytes.Buffer
			reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), &out, nil, vm.StreamFuel(len(payload)))
			if err != nil {
				t.Fatal(err)
			}
			lease.Release(reusable)
			if got := sha256.Sum256(out.Bytes()); got != golden {
				t.Fatalf("fallback output hash %x, want %x", got, golden)
			}
			s := store.Stats()
			if s.Fallbacks != 1 {
				t.Fatalf("store stats = %+v, want exactly one fallback", s)
			}
			if s.Saves == 0 {
				t.Fatalf("store stats = %+v, want the rebuild to repair the artifact", s)
			}
			// The repaired artifact serves the next fresh process.
			fresh, err := artifact.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			c2 := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: fresh})
			l2, err := c2.Get(context.Background(), echoHash, 0644, 0, noBuild)
			if err != nil {
				t.Fatalf("repaired artifact did not load: %v", err)
			}
			l2.Release(false)
		})
	}
}

// TestSnapCacheFlushOnNewSuperblock: a newly absorbed superblock must
// trigger FlushArtifacts even when block-cache growth stays under the
// flushMinNewBlocks threshold — superblocks encode hot-path tracing
// across many streams, the most expensive translation state to lose on
// restart.
func TestSnapCacheFlushOnNewSuperblock(t *testing.T) {
	dir := t.TempDir()
	echo := compile(t, echoSrc)
	echoHash := HashELF(mustELF(t, echo))
	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: store})

	// A short stream stays below the superblock heat threshold (the
	// echo loop runs once per byte, so fewer bytes than sbHotThreshold):
	// blocks absorb, superblocks don't form.
	short := []byte("cold loop")
	cacheStream(t, c, echoHash, 0644, 0, echo, short, short)
	key := CacheKey{Hash: echoHash, Mode: 0644}
	c.mu.Lock()
	e := c.entries[key]
	if sc := e.snap.SBCount(); sc != 0 {
		c.mu.Unlock()
		t.Fatalf("short stream formed %d superblocks; test needs a cold start", sc)
	}
	c.mu.Unlock()
	c.FlushArtifacts()

	// A long stream runs the loop hot: superblocks form and absorb on
	// release, while most blocks were already translated.
	long := bytes.Repeat([]byte("superblock heat "), 256)
	cacheStream(t, c, echoHash, 0644, 0, echo, long, long)
	c.mu.Lock()
	if sc := e.snap.SBCount(); sc == 0 {
		c.mu.Unlock()
		t.Fatal("long stream absorbed no superblocks; test is vacuous")
	}
	// Neutralize the block-count trigger so only the superblock delta
	// can justify the write we assert on.
	e.savedBlocks = e.snap.BlockCount()
	c.mu.Unlock()

	if n := c.FlushArtifacts(); n != 1 {
		t.Fatalf("FlushArtifacts wrote %d artifacts, want 1 (new superblock)", n)
	}
	// The write advanced the saved counters: nothing new, nothing flushed.
	if n := c.FlushArtifacts(); n != 0 {
		t.Fatalf("repeat FlushArtifacts wrote %d artifacts, want 0", n)
	}

	// The persisted superblocks reach the next process.
	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: store2})
	lease, err := c2.Get(context.Background(), echoHash, 0644, 0, noBuild)
	if err != nil {
		t.Fatal(err)
	}
	lease.Release(false)
	c2.mu.Lock()
	sc := c2.entries[key].snap.SBCount()
	c2.mu.Unlock()
	if sc == 0 {
		t.Fatal("restored snapshot carries no superblocks")
	}
}

// TestSnapCacheArtifactConcurrentMisses: many goroutines missing on
// distinct modes of one decoder while the store is live is race-free
// and always correct (run with -race).
func TestSnapCacheArtifactConcurrentMisses(t *testing.T) {
	dir := t.TempDir()
	echo := compile(t, echoSrc)
	echoHash := HashELF(mustELF(t, echo))
	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSnapCache(SnapCacheConfig{VM: testVMCfg, Artifacts: store})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(mode uint32) {
			payload := []byte(fmt.Sprintf("stream under mode %o", mode))
			lease, err := c.Get(context.Background(), echoHash, mode, 0, echo)
			if err != nil {
				done <- err
				return
			}
			var out bytes.Buffer
			reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), &out, nil, vm.StreamFuel(len(payload)))
			lease.Release(reusable && err == nil)
			if err == nil && !bytes.Equal(out.Bytes(), payload) {
				err = errors.New("echo output mismatch")
			}
			done <- err
		}(uint32(0600 + i))
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c.FlushArtifacts()
	if s := store.Stats(); s.Fallbacks != 0 || s.SaveErrors != 0 {
		t.Fatalf("store stats = %+v, want clean concurrent operation", s)
	}
}
