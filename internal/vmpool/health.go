package vmpool

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"vxa/internal/vm"
)

// Decoder health tracking: a per-decoder-content-hash circuit breaker.
//
// An archive carries arbitrary decoder code, so a single poisoned or
// pathological decoder ELF can otherwise burn a VM lease (and a
// snapshot rebuild) on every request that references it. The breaker
// accounts the failure classes that indict the decoder itself — traps,
// fuel exhaustion, watchdog kills, snapshot-build failures — and after
// Threshold consecutive failures opens: requests for that content hash
// fail fast with ErrDecoderQuarantined, no VM leased, until a
// half-open probe admits one request per backoff interval. A probe
// that succeeds closes the breaker; one that fails reopens it with the
// backoff doubled (capped at MaxBackoff).
//
// Deliberately NOT counted: nonzero decoder exits and stream protocol
// violations (routinely caused by corrupt *payloads*, and quarantining
// a shared codec because one client uploads garbage would be a denial
// of service), cancellations, and host-side I/O errors. Accounting is
// keyed by content hash alone — a decoder that fails under one
// security mode is quarantined under all of them, since the code is
// identical.

// BreakerState is one decoder's circuit-breaker state.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed: healthy; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: quarantined; requests fail fast until the backoff
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: a probe request is in flight (or admitted); the
	// next report decides reopen vs close.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// HealthConfig configures decoder health tracking.
type HealthConfig struct {
	// Threshold is the consecutive-failure count that opens a decoder's
	// breaker. 0 selects DefaultBreakerThreshold; negative disables
	// health tracking entirely.
	Threshold int
	// Backoff is the initial open → half-open probe delay. Each failed
	// probe doubles it, up to MaxBackoff. 0 selects
	// DefaultBreakerBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff. 0 selects
	// DefaultBreakerMaxBackoff.
	MaxBackoff time.Duration

	// now is the clock, swappable by tests. nil means time.Now.
	now func() time.Time
}

// Health-tracking defaults.
const (
	DefaultBreakerThreshold  = 5
	DefaultBreakerBackoff    = 500 * time.Millisecond
	DefaultBreakerMaxBackoff = 30 * time.Second
)

// ErrDecoderQuarantined is the sentinel matched (via errors.Is) by the
// fail-fast error returned while a decoder's breaker is open.
var ErrDecoderQuarantined = errors.New("vmpool: decoder quarantined")

// QuarantineError is the concrete fail-fast error: it names the
// quarantined decoder and how long until the next half-open probe is
// admitted (the serving layer's Retry-After).
type QuarantineError struct {
	Hash       [32]byte
	RetryAfter time.Duration
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("vmpool: decoder %s quarantined (next probe in %v)",
		hex.EncodeToString(e.Hash[:8]), e.RetryAfter)
}

// Is makes errors.Is(err, ErrDecoderQuarantined) match.
func (e *QuarantineError) Is(target error) bool { return target == ErrDecoderQuarantined }

// Outcome classifies one finished decoder stream (or failed snapshot
// build) for health accounting.
type Outcome int

// Outcomes.
const (
	// OutcomeIgnore says the event carries no signal about the
	// decoder's health (cancellation, host I/O failure, payload-driven
	// nonzero exit) and must not move the breaker either way.
	OutcomeIgnore Outcome = iota
	// OutcomeOK is a successfully decoded stream.
	OutcomeOK
	// OutcomeTrap is a guest trap (memory, illegal instruction, bad
	// syscall, divide, read-only write).
	OutcomeTrap
	// OutcomeFuel is instruction-budget exhaustion.
	OutcomeFuel
	// OutcomeWatchdog is a wall-clock watchdog kill.
	OutcomeWatchdog
	// OutcomeBuildFail is a failed decoder snapshot build.
	OutcomeBuildFail
)

// OutcomeFor maps a stream error to its health outcome. The error is
// the raw stream error (before core-level classification): traps and
// watchdog kills indict the decoder; fuel exhaustion surfaces as a
// fuel trap; everything else — cancellations, nonzero exits, write
// failures — is noise the breaker must not act on.
func OutcomeFor(err error) Outcome {
	if err == nil {
		return OutcomeOK
	}
	if vm.IsWatchdog(err) {
		return OutcomeWatchdog
	}
	if vm.IsCanceled(err) {
		return OutcomeIgnore
	}
	var trap *vm.Trap
	if errors.As(err, &trap) {
		if trap.Kind == vm.TrapFuel {
			return OutcomeFuel
		}
		return OutcomeTrap
	}
	return OutcomeIgnore
}

// FailureCounts tallies counted decoder failures by class.
type FailureCounts struct {
	Traps    uint64 `json:"traps"`
	Fuel     uint64 `json:"fuel"`
	Watchdog uint64 `json:"watchdog"`
	Builds   uint64 `json:"builds"`
}

// HealthStats is a point-in-time view of decoder health tracking.
type HealthStats struct {
	// Tracked is the number of decoders with a live failure record
	// (healthy decoders are dropped on their next success).
	Tracked int `json:"tracked"`
	// Open and HalfOpen count breakers currently in those states.
	Open     int `json:"open"`
	HalfOpen int `json:"half_open"`
	// Trips counts closed/half-open → open transitions.
	Trips uint64 `json:"trips"`
	// Probes counts half-open probe admissions; ProbeSuccesses counts
	// the ones that closed the breaker.
	Probes         uint64 `json:"probes"`
	ProbeSuccesses uint64 `json:"probe_successes"`
	// Failures tallies counted decoder failures by class.
	Failures FailureCounts `json:"failures"`
}

// decoderHealth is one content hash's breaker.
type decoderHealth struct {
	state       BreakerState
	consecutive int
	backoff     time.Duration
	retryAt     time.Time
}

// Health tracks per-decoder failure accounting and breakers. A nil
// *Health is valid and tracks nothing.
type Health struct {
	cfg HealthConfig

	mu       sync.Mutex
	m        map[[32]byte]*decoderHealth
	trips    uint64
	probes   uint64
	probeOKs uint64
	fails    FailureCounts
}

// NewHealth creates a health tracker. A negative Threshold returns a
// tracker that is permanently disabled.
func NewHealth(cfg HealthConfig) *Health {
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultBreakerThreshold
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBreakerBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultBreakerMaxBackoff
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Health{cfg: cfg, m: make(map[[32]byte]*decoderHealth)}
}

func (h *Health) disabled() bool { return h == nil || h.cfg.Threshold < 0 }

// Allow gates a request for the decoder: nil means proceed (including
// the admission of a half-open probe once per backoff interval); a
// *QuarantineError means fail fast without leasing anything. When a
// probe is admitted its retry time advances immediately, so a probe
// whose outcome is never reported (caller crashed, request canceled)
// just means the next probe fires one backoff later — the breaker can
// never wedge waiting for a report.
func (h *Health) Allow(hash [32]byte) error {
	if h.disabled() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.m[hash]
	if d == nil || d.state == BreakerClosed {
		return nil
	}
	now := h.cfg.now()
	if now.Before(d.retryAt) {
		return &QuarantineError{Hash: hash, RetryAfter: d.retryAt.Sub(now)}
	}
	d.state = BreakerHalfOpen
	d.retryAt = now.Add(d.backoff)
	h.probes++
	return nil
}

// Report feeds one outcome into the hash's breaker and reports whether
// this report tripped it open (the caller then quarantine-evicts the
// decoder's cached snapshot, so a poisoned line is rebuilt rather than
// reshared when the breaker eventually closes).
func (h *Health) Report(hash [32]byte, o Outcome) (opened bool) {
	if h.disabled() || o == OutcomeIgnore {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	if o == OutcomeOK {
		d := h.m[hash]
		if d == nil {
			return false
		}
		if d.state == BreakerHalfOpen {
			h.probeOKs++
		}
		// Healthy again: drop the record entirely, which resets the
		// consecutive count and the backoff and keeps the map bounded
		// by the number of currently-unhealthy decoders.
		delete(h.m, hash)
		return false
	}

	switch o {
	case OutcomeTrap:
		h.fails.Traps++
	case OutcomeFuel:
		h.fails.Fuel++
	case OutcomeWatchdog:
		h.fails.Watchdog++
	case OutcomeBuildFail:
		h.fails.Builds++
	}

	d := h.m[hash]
	if d == nil {
		d = &decoderHealth{backoff: h.cfg.Backoff}
		h.m[hash] = d
	}
	d.consecutive++
	now := h.cfg.now()
	switch d.state {
	case BreakerHalfOpen:
		// Failed probe: reopen with the backoff doubled.
		d.backoff = min(2*d.backoff, h.cfg.MaxBackoff)
		d.state = BreakerOpen
		d.retryAt = now.Add(d.backoff)
		h.trips++
		return true
	case BreakerOpen:
		// A straggler from before the trip; the breaker is already
		// doing its job.
		return false
	default:
		if d.consecutive >= h.cfg.Threshold {
			d.state = BreakerOpen
			d.retryAt = now.Add(d.backoff)
			h.trips++
			return true
		}
		return false
	}
}

// Quarantined reports whether Allow would currently fail the hash
// fast. Unlike Allow it never admits a probe, so it is safe to poll:
// an open breaker whose retry time has passed is due for a probe and
// no longer counts as fail-fast quarantined.
func (h *Health) Quarantined(hash [32]byte) bool {
	return h.Check(hash) != nil
}

// Check returns the fail-fast *QuarantineError Allow would return, or
// nil when a request for the hash may proceed. Unlike Allow it never
// admits a probe, so serving layers can fail quarantined requests
// before paying for admission without stealing the probe slot from the
// request that will actually run.
func (h *Health) Check(hash [32]byte) error {
	if h.disabled() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.m[hash]
	if d == nil || d.state != BreakerOpen {
		return nil
	}
	now := h.cfg.now()
	if !now.Before(d.retryAt) {
		return nil // a probe is due; let the request through to Allow
	}
	return &QuarantineError{Hash: hash, RetryAfter: d.retryAt.Sub(now)}
}

// State returns the hash's current breaker state (for tests and
// monitoring).
func (h *Health) State(hash [32]byte) BreakerState {
	if h.disabled() {
		return BreakerClosed
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if d := h.m[hash]; d != nil {
		return d.state
	}
	return BreakerClosed
}

// Stats returns a point-in-time view.
func (h *Health) Stats() HealthStats {
	if h.disabled() {
		return HealthStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HealthStats{
		Tracked: len(h.m), Trips: h.trips,
		Probes: h.probes, ProbeSuccesses: h.probeOKs,
		Failures: h.fails,
	}
	for _, d := range h.m {
		switch d.state {
		case BreakerOpen:
			s.Open++
		case BreakerHalfOpen:
			s.HalfOpen++
		}
	}
	return s
}
