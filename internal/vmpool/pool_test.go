package vmpool

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"vxa/internal/vm"
	"vxa/internal/vxcc"
)

// leakySrc is a hostile multi-stream decoder: each stream first echoes
// whatever its static buffer held before (i.e. the previous stream's
// data), then records the new stream into the buffer. Run back-to-back
// without a reset it leaks stream N-1 into stream N's output — exactly
// the channel the §2.4 attribute-change re-initialization must close.
const leakySrc = `
byte secret[64];
int main(void) {
	while (1) {
		__stdio_reset();
		putn(secret, 64);
		int i;
		for (i = 0; i < 64; i++) {
			int c = getb();
			if (c < 0) c = 0;
			secret[i] = (byte)c;
		}
		vxa_done();
	}
	return 0;
}`

// echoSrc copies each stream through unchanged.
const echoSrc = `
int main(void) {
	while (1) {
		__stdio_reset();
		int c;
		while ((c = getb()) >= 0) putb(c);
		vxa_done();
	}
	return 0;
}`

func compile(t testing.TB, src string) func() ([]byte, error) {
	t.Helper()
	build, err := vxcc.Compile(vxcc.Options{}, vxcc.Source{Name: "test.vxc", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	return func() ([]byte, error) { return build.ELF, nil }
}

// runStream drives one stream on a leased VM and returns its output.
func runStream(t testing.TB, l *Lease, input []byte) []byte {
	t.Helper()
	v := l.VM()
	var out bytes.Buffer
	v.Stdin = bytes.NewReader(input)
	v.Stdout = &out
	st, err := v.Run()
	if err != nil {
		l.Release(false)
		t.Fatal(err)
	}
	if st != vm.StatusDone {
		l.Release(false)
		t.Fatalf("decoder exited (status %v) instead of signalling done", st)
	}
	return out.Bytes()
}

// TestModeIsolation proves both halves of the §2.4 policy: same-key
// leases resume the parked VM (decoder state intentionally persists),
// and a mode change hands out a pristine image (nothing persists).
func TestModeIsolation(t *testing.T) {
	p := New(Options{VM: vm.Config{MemSize: 4 << 20}})
	elf := compile(t, leakySrc)
	zeros := make([]byte, 64)
	aaaa := bytes.Repeat([]byte("A"), 64)
	bbbb := bytes.Repeat([]byte("B"), 64)

	l1, err := p.Get(context.Background(), "leaky", 0600, elf)
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Pristine() {
		t.Fatal("first lease must be pristine")
	}
	if got := runStream(t, l1, aaaa); !bytes.Equal(got, zeros) {
		t.Fatalf("pristine VM emitted %q, want zeros", got)
	}
	l1.Release(true)

	// Same key: the parked VM resumes, and the previous stream's data is
	// visible — that is what "reuse within equal attributes" means.
	l2, err := p.Get(context.Background(), "leaky", 0600, elf)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Pristine() {
		t.Fatal("same-key lease should resume, not re-init")
	}
	if got := runStream(t, l2, bbbb); !bytes.Equal(got, aaaa) {
		t.Fatalf("resumed VM emitted %q, want the previous stream's %q", got, aaaa)
	}
	l2.Release(true)

	// Different security mode: the idle VM is rewound to the pristine
	// snapshot; stream B's secret must be gone.
	l3, err := p.Get(context.Background(), "leaky", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}
	if !l3.Pristine() {
		t.Fatal("mode change must hand out a pristine image")
	}
	if got := runStream(t, l3, zeros); !bytes.Equal(got, zeros) {
		t.Fatalf("reset VM leaked %q across security modes", got)
	}
	l3.Release(true)

	st := p.Stats()
	if st.Snapshots != 1 || st.Builds != 1 || st.Resumes != 1 || st.Resets != 1 {
		t.Fatalf("stats = %+v, want 1 snapshot / 1 build / 1 resume / 1 reset", st)
	}
}

// TestConcurrentLeases hammers one pool from many goroutines across two
// security modes; run with -race. Every stream must come back verbatim
// through its own VM.
func TestConcurrentLeases(t *testing.T) {
	p := New(Options{VM: vm.Config{MemSize: 4 << 20}})
	elf := compile(t, echoSrc)

	const workers = 8
	const streams = 20
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mode := uint32(0600)
			if w%2 == 0 {
				mode = 0644
			}
			for i := 0; i < streams; i++ {
				input := bytes.Repeat([]byte{byte('a' + w)}, 128+i)
				l, err := p.Get(context.Background(), "echo", mode, elf)
				if err != nil {
					errc <- err
					return
				}
				v := l.VM()
				var out bytes.Buffer
				v.Stdin = bytes.NewReader(input)
				v.Stdout = &out
				st, err := v.Run()
				if err != nil || st != vm.StatusDone {
					l.Release(false)
					errc <- fmt.Errorf("worker %d stream %d: st=%v err=%v", w, i, st, err)
					return
				}
				l.Release(true)
				if !bytes.Equal(out.Bytes(), input) {
					errc <- fmt.Errorf("worker %d stream %d: echo mismatch", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1 (one ELF parse total)", st.Snapshots)
	}
	if st.Builds+st.Resets+st.Resumes != workers*streams {
		t.Fatalf("stats don't add up: %+v", st)
	}
}

// TestIdleBound: the pool retains at most MaxIdlePerKey VMs per key.
func TestIdleBound(t *testing.T) {
	p := New(Options{VM: vm.Config{MemSize: 4 << 20}, MaxIdlePerKey: 1})
	elf := compile(t, echoSrc)
	var leases []*Lease
	for i := 0; i < 3; i++ {
		l, err := p.Get(context.Background(), "echo", 0644, elf)
		if err != nil {
			t.Fatal(err)
		}
		runStream(t, l, []byte("x"))
		leases = append(leases, l)
	}
	for _, l := range leases {
		l.Release(true)
	}
	if p.IdleCount() != 1 {
		t.Fatalf("idle = %d, want 1", p.IdleCount())
	}
	if p.Stats().Discards != 2 {
		t.Fatalf("discards = %d, want 2", p.Stats().Discards)
	}
}

// TestDoubleReleaseAndBadELF: Release is idempotent and a failing ELF
// fetch surfaces (and stays) as an error for the codec.
func TestDoubleReleaseAndBadELF(t *testing.T) {
	p := New(Options{VM: vm.Config{MemSize: 4 << 20}})
	l, err := p.Get(context.Background(), "echo", 0644, compile(t, echoSrc))
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, l, nil)
	l.Release(true)
	l.Release(true)
	if p.IdleCount() != 1 {
		t.Fatalf("double release duplicated the VM: idle = %d", p.IdleCount())
	}

	if _, err := p.Get(context.Background(), "broken", 0644, func() ([]byte, error) {
		return nil, fmt.Errorf("no such decoder")
	}); err == nil {
		t.Fatal("want error from failing elf fetch")
	}
	// The elf callback must not be retried: the failure is cached.
	if _, err := p.Get(context.Background(), "broken", 0644, func() ([]byte, error) {
		t.Fatal("elf callback retried after cached failure")
		return nil, nil
	}); err == nil {
		t.Fatal("want cached error")
	}
}

// TestDrain: idle VMs are droppable without losing the snapshot.
func TestDrain(t *testing.T) {
	p := New(Options{VM: vm.Config{MemSize: 4 << 20}})
	elf := compile(t, echoSrc)
	l, err := p.Get(context.Background(), "echo", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, l, []byte("x"))
	l.Release(true)
	if n := p.Drain(); n != 1 {
		t.Fatalf("drained %d VMs, want 1", n)
	}
	if p.IdleCount() != 0 {
		t.Fatalf("idle = %d after drain", p.IdleCount())
	}
	// The snapshot survives: the next stream needs no new ELF parse.
	l2, err := p.Get(context.Background(), "echo", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}
	if got := runStream(t, l2, []byte("y")); !bytes.Equal(got, []byte("y")) {
		t.Fatalf("post-drain stream = %q", got)
	}
	l2.Release(true)
	if p.Stats().Snapshots != 1 {
		t.Fatalf("snapshots = %d after drain, want 1", p.Stats().Snapshots)
	}
}

// TestDrainRaceStress races Drain against concurrent Get/Release across
// two codecs and both security modes, with mode flips forcing the
// reset path. Run under -race; the assertions are liveness plus final
// pool coherence.
func TestDrainRaceStress(t *testing.T) {
	p := New(Options{VM: vm.Config{MemSize: 4 << 20}, MaxIdlePerKey: 2})
	echo := compile(t, echoSrc)
	leaky := compile(t, leakySrc)
	elves := map[string]func() ([]byte, error){"echo": echo, "leaky": leaky}

	const workers, iters = 6, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := "echo"
				if (w+i)%3 == 0 {
					name = "leaky"
				}
				mode := uint32(0600 + (w+i)%2*044)
				l, err := p.Get(context.Background(), name, mode, elves[name])
				if err != nil {
					t.Error(err)
					return
				}
				v := l.VM()
				var out bytes.Buffer
				v.Stdin = bytes.NewReader([]byte("drain race"))
				v.Stdout = &out
				st, err := v.Run()
				if err != nil || st != vm.StatusDone {
					l.Release(false)
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
					}
					continue
				}
				l.Release(true)
				if i%5 == 0 {
					p.Drain()
				}
			}
		}(w)
	}
	wg.Wait()

	if n := p.IdleCount(); n > 0 {
		p.Drain()
	}
	if n := p.IdleCount(); n != 0 {
		t.Fatalf("IdleCount = %d after final Drain, want 0", n)
	}
	s := p.Stats()
	if s.Snapshots != 2 {
		t.Fatalf("snapshots = %d, want 2", s.Snapshots)
	}
	if s.Builds+s.Resets+s.Resumes != workers*iters {
		t.Fatalf("builds %d + resets %d + resumes %d != %d leases",
			s.Builds, s.Resets, s.Resumes, workers*iters)
	}
	// The pool must still serve after the storm.
	l, err := p.Get(context.Background(), "echo", 0644, echo)
	if err != nil {
		t.Fatal(err)
	}
	out := runStream(t, l, []byte("after"))
	l.Release(true)
	if string(out) != "after" {
		t.Fatalf("post-storm stream echoed %q", out)
	}
}
