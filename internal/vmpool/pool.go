// Package vmpool is a concurrency-safe pool of decoder virtual machines,
// the engine behind parallel archive extraction. It amortizes the §2.4
// decoder setup cost at two levels:
//
//   - Per codec, the decoder ELF is parsed exactly once into a pristine
//     vm.Snapshot (memory image, registers, sandbox bounds and, once the
//     first stream has run, the predecoded basic-block cache).
//   - Per (codec, security mode) key, idle VMs parked at the done gate
//     are kept and resumed in place for the next stream — the paper's
//     VM-reuse policy. A VM last used under different security
//     attributes is never resumed: it is first rewound to the pristine
//     snapshot, so no decoder state can leak between protection domains.
//
// Get hands out a Lease; the caller runs exactly one stream on the
// leased VM and returns it with Release. The pool never runs guest code
// itself.
package vmpool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vxa/internal/elf32"
	"vxa/internal/fault"
	"vxa/internal/obs"
	"vxa/internal/vm"
)

// Key identifies one reuse class: VMs are interchangeable only within
// the same decoder, the same security attributes (§2.4) and the same
// trust scope. Scope partitions resume-in-place reuse between clients
// sharing one pool (e.g. through a content-addressed snapshot cache): a
// parked VM carries the residual memory of the streams it decoded, so
// it may only be resumed verbatim by the same scope; any other scope
// reaches it through the pristine-reset path.
type Key struct {
	Codec string
	Mode  uint32 // Unix permission bits, the archive's security attributes
	Scope uint64 // trust-scope token (0 = the pool owner's single scope)
}

// Options configure a Pool.
type Options struct {
	// VM is the per-VM configuration (memory size, fuel, cache policy).
	// All VMs in the pool share it; the zero value selects vm defaults.
	VM vm.Config
	// MaxIdlePerKey bounds how many idle VMs are retained per key;
	// returning a VM beyond the bound drops it. 0 selects GOMAXPROCS.
	MaxIdlePerKey int
	// MaxLive caps leases in flight across the whole pool. When every
	// slot is leased, Get blocks until a lease is released or the
	// caller's context is canceled — the backpressure a bounded serving
	// layer needs instead of unbounded VM growth. 0 means unlimited.
	MaxLive int
}

// Stats are cumulative pool counters (JSON-tagged: they surface,
// aggregated, on the vxad metrics endpoint).
type Stats struct {
	Snapshots int `json:"snapshots"` // decoder ELFs parsed into a pristine snapshot
	Builds    int `json:"builds"`    // VMs materialized fresh from a snapshot
	Resets    int `json:"resets"`    // idle VMs rewound to the pristine snapshot
	Resumes   int `json:"resumes"`   // idle VMs resumed in place (same key, no reset)
	Discards  int `json:"discards"`  // VMs dropped (trapped, exited, or over the idle bound)
}

// Pool is a concurrency-safe VM pool. The zero value is not usable; use
// New.
type Pool struct {
	opts Options
	sem  chan struct{} // MaxLive lease slots; nil when unlimited

	mu          sync.Mutex
	codec       map[string]*codecState
	idle        map[Key][]*vm.VM
	stats       Stats
	vmAgg       vm.Stats // engine counters accumulated from released leases
	outstanding int      // leases checked out and not yet released
}

// codecState is the per-codec snapshot, built once under once. spare and
// warmed are guarded by the pool mutex (after once has completed).
type codecState struct {
	once sync.Once
	snap *vm.Snapshot
	err  error

	// spare is the VM the snapshot was captured from: byte-identical to
	// the snapshot state, it is handed to the first lease instead of
	// paying a second full-image allocation.
	spare *vm.VM
	// warmed records that a finished stream's block cache has been
	// absorbed into the snapshot; later releases skip the scan.
	warmed bool
}

// New creates an empty pool.
func New(opts Options) *Pool {
	if opts.MaxIdlePerKey <= 0 {
		opts.MaxIdlePerKey = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		opts:  opts,
		codec: make(map[string]*codecState),
		idle:  make(map[Key][]*vm.VM),
	}
	if opts.MaxLive > 0 {
		p.sem = make(chan struct{}, opts.MaxLive)
	}
	return p
}

// Lease is one checked-out VM. The holder runs exactly one stream on it
// and must call Release exactly once: Release(true) for a VM parked at
// the done gate, Release(false) for one that trapped or exited.
type Lease struct {
	p        *Pool
	v        *vm.VM
	key      Key
	stats0   vm.Stats // VM counters at checkout, for the release delta
	pristine bool
	done     bool
}

// VM returns the leased machine.
func (l *Lease) VM() *vm.VM { return l.v }

// Pristine reports whether this lease handed out a VM in the pristine
// decoder image (fresh build or reset) rather than one resumed in place —
// the datum behind the reader's ReinitCount statistic.
func (l *Lease) Pristine() bool { return l.pristine }

// newLease wraps a checked-out VM, recording its engine counters so
// Release can fold the stream's delta into the pool aggregate.
func newLease(p *Pool, v *vm.VM, key Key, pristine bool) *Lease {
	return &Lease{p: p, v: v, key: key, stats0: v.Stats(), pristine: pristine}
}

// Seed installs a prebuilt pristine snapshot for codec, as if the first
// Get had parsed the decoder ELF, and reports whether it was installed
// (false when the codec key already exists). spare, when non-nil, is the
// VM the snapshot was captured from: byte-identical to the snapshot, it
// is handed to the first lease instead of paying a fresh image
// allocation. After a seed, Get for that codec may pass a nil elf
// callback. This is the entry point for content-addressed caches that
// build snapshots themselves (see SnapCache).
func (p *Pool) Seed(codec string, snap *vm.Snapshot, spare *vm.VM) bool {
	cs := &codecState{snap: snap, spare: spare}
	cs.once.Do(func() {}) // mark built
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.codec[codec]; exists {
		return false
	}
	p.codec[codec] = cs
	p.stats.Snapshots++
	return true
}

// Get returns a VM ready to decode one stream for (codec, mode). codec
// is an opaque decoder identity key — callers embedding decoders from an
// archive should include the decoder's storage offset in it, so two
// decoders sharing a name never share a VM line. The elf callback
// supplies the decoder executable; it is invoked only the first time a
// codec key is seen, so callers can defer the (possibly expensive) fetch
// from the archive. A codec installed with Seed never invokes it, so a
// nil elf is valid there.
//
// Preference order: an idle VM for the same key resumed in place; the
// pristine VM the snapshot was captured from; an idle VM from another
// security mode or scope, rewound to the pristine snapshot; a VM
// materialized fresh from the snapshot.
//
// When the pool was created with MaxLive and every slot is leased, Get
// blocks until a lease is released or ctx is canceled; the returned
// error then wraps ctx.Err().
func (p *Pool) Get(ctx context.Context, codec string, mode uint32, elf func() ([]byte, error)) (*Lease, error) {
	return p.GetScoped(ctx, codec, mode, 0, elf)
}

// GetScoped is Get with an explicit trust scope: VMs park and resume
// per (codec, mode, scope), and a lease crossing scopes always starts
// from the pristine snapshot, so one client's decoder residue can never
// reach another client's stream. Single-tenant callers use Get.
func (p *Pool) GetScoped(ctx context.Context, codec string, mode uint32, scope uint64, elf func() ([]byte, error)) (*Lease, error) {
	key := Key{Codec: codec, Mode: mode, Scope: scope}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("vmpool: %w", err)
	}
	// Request tracing: snapshot-build time (the cold path, including
	// coalesced waits on another goroutine's in-flight build) and lease
	// wait (slot wait + VM pickup/reset/build) are attributed to the
	// request's span when one rides in ctx. Untraced callers pay two
	// context lookups and clock reads per lease.
	sp := obs.SpanFrom(ctx)
	snapStart := time.Now()

	p.mu.Lock()
	cs := p.codec[codec]
	if cs == nil {
		cs = &codecState{}
		p.codec[codec] = cs
	}
	p.mu.Unlock()

	// Build the pristine snapshot once per codec, outside the pool lock:
	// ELF fetch + parse + image copy can be slow and must not serialize
	// unrelated codecs.
	cs.once.Do(func() {
		if elf == nil {
			cs.err = fmt.Errorf("no decoder source (nil elf callback on an unseeded codec)")
			return
		}
		elfBytes, err := elf()
		if err != nil {
			cs.err = err
			return
		}
		v, err := elf32.NewVM(elfBytes, p.opts.VM)
		if err != nil {
			cs.err = err
			return
		}
		cs.snap = v.Snapshot()
		cs.spare = v
		p.mu.Lock()
		p.stats.Snapshots++
		p.mu.Unlock()
	})
	if cs.err != nil {
		return nil, fmt.Errorf("vmpool: decoder %s: %w", codec, cs.err)
	}
	sp.Add(obs.StageSnapshot, time.Since(snapStart))

	// Lease-slot admission (MaxLive): block here, not under the pool
	// lock, until a slot frees or the caller gives up. The slot is
	// released by Release/ReleaseReset. A blocked slot wait is
	// backpressure queueing, so it lands in the span's queue stage
	// (only the VM pickup below is lease work) — in particular, a
	// request canceled while parked here reports queue time and a
	// context error (wrapping ctx.Err(), so errors.Is sees the
	// client's cancellation), never a pool failure.
	if p.sem != nil {
		select {
		case p.sem <- struct{}{}:
		default:
			waitStart := time.Now()
			select {
			case p.sem <- struct{}{}:
				sp.Add(obs.StageQueue, time.Since(waitStart))
			case <-ctx.Done():
				sp.Add(obs.StageQueue, time.Since(waitStart))
				return nil, fmt.Errorf("vmpool: waiting for a VM: %w", ctx.Err())
			}
		}
	}
	// Chaos hook: an injected lease fault models transient pool
	// unavailability after admission.
	if err := fault.Inject(fault.LeaseAcquire); err != nil {
		p.releaseSlot()
		return nil, err
	}
	leaseStart := time.Now()
	defer func() { sp.Add(obs.StageLease, time.Since(leaseStart)) }()

	p.mu.Lock()
	// Same key: resume the parked VM without touching its state.
	if vs := p.idle[key]; len(vs) > 0 {
		v := vs[len(vs)-1]
		p.idle[key] = vs[:len(vs)-1]
		p.stats.Resumes++
		p.outstanding++
		p.mu.Unlock()
		return newLease(p, v, key, false), nil
	}
	// The snapshot's own source VM is still pristine: first lease takes
	// it for free.
	if cs.spare != nil {
		v := cs.spare
		cs.spare = nil
		p.stats.Builds++
		p.outstanding++
		p.mu.Unlock()
		return newLease(p, v, key, true), nil
	}
	// Same codec, different mode or scope: steal an idle VM and rewind
	// it to the pristine image — the §2.4 attribute-change
	// re-initialization, which also severs any residue across trust
	// scopes.
	for k, vs := range p.idle {
		if k.Codec != codec || len(vs) == 0 {
			continue
		}
		v := vs[len(vs)-1]
		p.idle[k] = vs[:len(vs)-1]
		p.stats.Resets++
		p.outstanding++
		p.mu.Unlock()
		if err := v.Reset(cs.snap); err != nil {
			p.mu.Lock()
			p.outstanding--
			p.mu.Unlock()
			p.releaseSlot()
			return nil, err
		}
		return newLease(p, v, key, true), nil
	}
	p.stats.Builds++
	p.outstanding++
	p.mu.Unlock()
	return newLease(p, cs.snap.NewVM(), key, true), nil
}

// Release returns the leased VM to the pool. reusable says the stream
// ended with the done gate and the VM is parked, ready for another
// stream; a VM that trapped or exited is not reusable and is dropped.
// The VM's I/O streams are detached either way.
func (l *Lease) Release(reusable bool) {
	if l.done {
		return
	}
	l.done = true
	v := l.v
	v.Stdin, v.Stdout, v.Stderr = nil, nil, nil

	p := l.p
	defer p.releaseSlot()
	// Returning a warmed-up VM: fold its translation cache into the
	// snapshot so every future build/reset starts warm. Done on the
	// first return and again whenever a stream translated fragments the
	// snapshot has not seen (later streams reach code paths earlier ones
	// did not), outside the pool lock, and before the VM re-enters the
	// idle list (no other goroutine can be running it here). AbsorbBlocks
	// itself dedups, so re-absorbing is cheap when nothing is new.
	p.mu.Lock()
	addVMStats(&p.vmAgg, v.Stats(), l.stats0)
	p.outstanding--
	cs := p.codec[l.key.Codec]
	absorb := reusable && cs != nil && cs.snap != nil &&
		(!cs.warmed || v.Stats().BlocksBuilt > l.stats0.BlocksBuilt)
	if absorb {
		cs.warmed = true
	}
	p.mu.Unlock()
	if absorb {
		cs.snap.AbsorbBlocks(v)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if !reusable || len(p.idle[l.key]) >= p.opts.MaxIdlePerKey {
		p.stats.Discards++
		return
	}
	p.idle[l.key] = append(p.idle[l.key], v)
}

// ReleaseReset returns a lease whose stream was abandoned mid-flight
// (a canceled context): the VM's guest state is partial-stream garbage,
// so it is rewound to the pristine decoder snapshot and then parked
// idle — the cancellation path keeps the allocated guest image instead
// of discarding it, so a burst of cancellations cannot force a burst of
// image re-allocations. A VM that cannot be reset (no snapshot, size
// mismatch) is dropped.
func (l *Lease) ReleaseReset() {
	if l.done {
		return
	}
	l.done = true
	v := l.v
	v.Stdin, v.Stdout, v.Stderr = nil, nil, nil

	p := l.p
	defer p.releaseSlot()
	p.mu.Lock()
	addVMStats(&p.vmAgg, v.Stats(), l.stats0)
	p.outstanding--
	cs := p.codec[l.key.Codec]
	var snap *vm.Snapshot
	if cs != nil {
		snap = cs.snap
	}
	p.mu.Unlock()

	if snap == nil || v.Reset(snap) != nil {
		p.mu.Lock()
		p.stats.Discards++
		p.mu.Unlock()
		return
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Resets++
	if len(p.idle[l.key]) >= p.opts.MaxIdlePerKey {
		p.stats.Discards++
		return
	}
	p.idle[l.key] = append(p.idle[l.key], v)
}

// releaseSlot frees one MaxLive lease slot, unblocking a waiting Get.
func (p *Pool) releaseSlot() {
	if p.sem != nil {
		<-p.sem
	}
}

// Stats returns a copy of the cumulative counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Outstanding reports how many leases are checked out and not yet
// released. A caller that has orphaned a pool (e.g. a snapshot cache
// evicting its entry) can retire the pool's counters for good once
// this reaches zero — only then are all lease deltas folded in.
func (p *Pool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding
}

// VMStats returns the engine counters (steps, uops, translation time,
// syscalls, ...) accumulated across every lease released so far — the
// fleet-wide view a serving layer surfaces on its metrics endpoint.
// Streams still in flight are not included until their lease is
// released.
func (p *Pool) VMStats() vm.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vmAgg
}

// addVMStats folds the counter delta (after - before) of one released
// stream into dst.
func addVMStats(dst *vm.Stats, after, before vm.Stats) {
	dst.Steps += after.Steps - before.Steps
	dst.BlockLookups += after.BlockLookups - before.BlockLookups
	dst.BlocksBuilt += after.BlocksBuilt - before.BlocksBuilt
	dst.BlocksChained += after.BlocksChained - before.BlocksChained
	dst.UopsExecuted += after.UopsExecuted - before.UopsExecuted
	dst.FlagsMaterialized += after.FlagsMaterialized - before.FlagsMaterialized
	dst.FlagsElided += after.FlagsElided - before.FlagsElided
	dst.UopsFused += after.UopsFused - before.UopsFused
	dst.SuperblocksFormed += after.SuperblocksFormed - before.SuperblocksFormed
	dst.Tier2Compiled += after.Tier2Compiled - before.Tier2Compiled
	dst.Tier2Executed += after.Tier2Executed - before.Tier2Executed
	dst.Tier2Steps += after.Tier2Steps - before.Tier2Steps
	dst.Tier2Demotions += after.Tier2Demotions - before.Tier2Demotions
	dst.TranslateNS += after.TranslateNS - before.TranslateNS
	dst.ExecuteNS += after.ExecuteNS - before.ExecuteNS
	dst.Syscalls += after.Syscalls - before.Syscalls
}

// Drain drops every idle VM, releasing their guest memory, and returns
// how many were dropped. The pool stays usable: snapshots are retained,
// so later streams re-materialize VMs cheaply. Call it when a burst of
// extraction is over and the owner will stay alive (e.g. a long-lived
// serving Reader).
func (p *Pool) Drain() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for k, vs := range p.idle {
		n += len(vs)
		p.stats.Discards += len(vs)
		delete(p.idle, k)
	}
	return n
}

// IdleCount reports how many idle VMs the pool currently retains across
// all keys (exposed for tests and monitoring).
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, vs := range p.idle {
		n += len(vs)
	}
	return n
}
