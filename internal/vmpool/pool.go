// Package vmpool is a concurrency-safe pool of decoder virtual machines,
// the engine behind parallel archive extraction. It amortizes the §2.4
// decoder setup cost at two levels:
//
//   - Per codec, the decoder ELF is parsed exactly once into a pristine
//     vm.Snapshot (memory image, registers, sandbox bounds and, once the
//     first stream has run, the predecoded basic-block cache).
//   - Per (codec, security mode) key, idle VMs parked at the done gate
//     are kept and resumed in place for the next stream — the paper's
//     VM-reuse policy. A VM last used under different security
//     attributes is never resumed: it is first rewound to the pristine
//     snapshot, so no decoder state can leak between protection domains.
//
// Get hands out a Lease; the caller runs exactly one stream on the
// leased VM and returns it with Release. The pool never runs guest code
// itself.
package vmpool

import (
	"fmt"
	"runtime"
	"sync"

	"vxa/internal/elf32"
	"vxa/internal/vm"
)

// Key identifies one reuse class: VMs are interchangeable only within
// the same decoder and the same security attributes (§2.4).
type Key struct {
	Codec string
	Mode  uint32 // Unix permission bits, the archive's security attributes
}

// Options configure a Pool.
type Options struct {
	// VM is the per-VM configuration (memory size, fuel, cache policy).
	// All VMs in the pool share it; the zero value selects vm defaults.
	VM vm.Config
	// MaxIdlePerKey bounds how many idle VMs are retained per key;
	// returning a VM beyond the bound drops it. 0 selects GOMAXPROCS.
	MaxIdlePerKey int
}

// Stats are cumulative pool counters.
type Stats struct {
	Snapshots int // decoder ELFs parsed into a pristine snapshot
	Builds    int // VMs materialized fresh from a snapshot
	Resets    int // idle VMs rewound to the pristine snapshot
	Resumes   int // idle VMs resumed in place (same key, no reset)
	Discards  int // VMs dropped (trapped, exited, or over the idle bound)
}

// Pool is a concurrency-safe VM pool. The zero value is not usable; use
// New.
type Pool struct {
	opts Options

	mu    sync.Mutex
	codec map[string]*codecState
	idle  map[Key][]*vm.VM
	stats Stats
}

// codecState is the per-codec snapshot, built once under once. spare and
// warmed are guarded by the pool mutex (after once has completed).
type codecState struct {
	once sync.Once
	snap *vm.Snapshot
	err  error

	// spare is the VM the snapshot was captured from: byte-identical to
	// the snapshot state, it is handed to the first lease instead of
	// paying a second full-image allocation.
	spare *vm.VM
	// warmed records that a finished stream's block cache has been
	// absorbed into the snapshot; later releases skip the scan.
	warmed bool
}

// New creates an empty pool.
func New(opts Options) *Pool {
	if opts.MaxIdlePerKey <= 0 {
		opts.MaxIdlePerKey = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		opts:  opts,
		codec: make(map[string]*codecState),
		idle:  make(map[Key][]*vm.VM),
	}
}

// Lease is one checked-out VM. The holder runs exactly one stream on it
// and must call Release exactly once: Release(true) for a VM parked at
// the done gate, Release(false) for one that trapped or exited.
type Lease struct {
	p        *Pool
	v        *vm.VM
	key      Key
	pristine bool
	done     bool
}

// VM returns the leased machine.
func (l *Lease) VM() *vm.VM { return l.v }

// Pristine reports whether this lease handed out a VM in the pristine
// decoder image (fresh build or reset) rather than one resumed in place —
// the datum behind the reader's ReinitCount statistic.
func (l *Lease) Pristine() bool { return l.pristine }

// Get returns a VM ready to decode one stream for (codec, mode). codec
// is an opaque decoder identity key — callers embedding decoders from an
// archive should include the decoder's storage offset in it, so two
// decoders sharing a name never share a VM line. The elf callback
// supplies the decoder executable; it is invoked only the first time a
// codec key is seen, so callers can defer the (possibly expensive) fetch
// from the archive.
//
// Preference order: an idle VM for the same key resumed in place; the
// pristine VM the snapshot was captured from; an idle VM from another
// security mode, rewound to the pristine snapshot; a VM materialized
// fresh from the snapshot.
func (p *Pool) Get(codec string, mode uint32, elf func() ([]byte, error)) (*Lease, error) {
	key := Key{Codec: codec, Mode: mode}

	p.mu.Lock()
	cs := p.codec[codec]
	if cs == nil {
		cs = &codecState{}
		p.codec[codec] = cs
	}
	p.mu.Unlock()

	// Build the pristine snapshot once per codec, outside the pool lock:
	// ELF fetch + parse + image copy can be slow and must not serialize
	// unrelated codecs.
	cs.once.Do(func() {
		elfBytes, err := elf()
		if err != nil {
			cs.err = err
			return
		}
		v, err := elf32.NewVM(elfBytes, p.opts.VM)
		if err != nil {
			cs.err = err
			return
		}
		cs.snap = v.Snapshot()
		cs.spare = v
		p.mu.Lock()
		p.stats.Snapshots++
		p.mu.Unlock()
	})
	if cs.err != nil {
		return nil, fmt.Errorf("vmpool: decoder %s: %w", codec, cs.err)
	}

	p.mu.Lock()
	// Same key: resume the parked VM without touching its state.
	if vs := p.idle[key]; len(vs) > 0 {
		v := vs[len(vs)-1]
		p.idle[key] = vs[:len(vs)-1]
		p.stats.Resumes++
		p.mu.Unlock()
		return &Lease{p: p, v: v, key: key}, nil
	}
	// The snapshot's own source VM is still pristine: first lease takes
	// it for free.
	if cs.spare != nil {
		v := cs.spare
		cs.spare = nil
		p.stats.Builds++
		p.mu.Unlock()
		return &Lease{p: p, v: v, key: key, pristine: true}, nil
	}
	// Same codec, different mode: steal an idle VM and rewind it to the
	// pristine image, the §2.4 attribute-change re-initialization.
	for k, vs := range p.idle {
		if k.Codec != codec || len(vs) == 0 {
			continue
		}
		v := vs[len(vs)-1]
		p.idle[k] = vs[:len(vs)-1]
		p.stats.Resets++
		p.mu.Unlock()
		if err := v.Reset(cs.snap); err != nil {
			return nil, err
		}
		return &Lease{p: p, v: v, key: key, pristine: true}, nil
	}
	p.stats.Builds++
	p.mu.Unlock()
	return &Lease{p: p, v: cs.snap.NewVM(), key: key, pristine: true}, nil
}

// Release returns the leased VM to the pool. reusable says the stream
// ended with the done gate and the VM is parked, ready for another
// stream; a VM that trapped or exited is not reusable and is dropped.
// The VM's I/O streams are detached either way.
func (l *Lease) Release(reusable bool) {
	if l.done {
		return
	}
	l.done = true
	v := l.v
	v.Stdin, v.Stdout, v.Stderr = nil, nil, nil

	p := l.p
	// First return of a warmed-up VM: fold its translation cache into
	// the snapshot so every future build/reset starts warm. Done once
	// per codec, outside the pool lock, and before the VM re-enters the
	// idle list (no other goroutine can be running it here).
	p.mu.Lock()
	cs := p.codec[l.key.Codec]
	absorb := reusable && cs != nil && cs.snap != nil && !cs.warmed
	if absorb {
		cs.warmed = true
	}
	p.mu.Unlock()
	if absorb {
		cs.snap.AbsorbBlocks(v)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if !reusable || len(p.idle[l.key]) >= p.opts.MaxIdlePerKey {
		p.stats.Discards++
		return
	}
	p.idle[l.key] = append(p.idle[l.key], v)
}

// Stats returns a copy of the cumulative counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Drain drops every idle VM, releasing their guest memory, and returns
// how many were dropped. The pool stays usable: snapshots are retained,
// so later streams re-materialize VMs cheaply. Call it when a burst of
// extraction is over and the owner will stay alive (e.g. a long-lived
// serving Reader).
func (p *Pool) Drain() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for k, vs := range p.idle {
		n += len(vs)
		p.stats.Discards += len(vs)
		delete(p.idle, k)
	}
	return n
}

// IdleCount reports how many idle VMs the pool currently retains across
// all keys (exposed for tests and monitoring).
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, vs := range p.idle {
		n += len(vs)
	}
	return n
}
