package vmpool

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"vxa/internal/obs"
	"vxa/internal/vm"
)

// fakeClock is a hand-advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testHash(b byte) [32]byte {
	var h [32]byte
	h[0] = b
	return h
}

// The full breaker walk: closed → open after Threshold consecutive
// failures, fail-fast while open, half-open probe after the backoff,
// reopen with doubled backoff on a failed probe, closed again on a
// successful one.
func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(HealthConfig{Threshold: 3, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second, now: clk.now})
	hash := testHash(1)

	// A success wipes the consecutive count: two traps + OK + two traps
	// never reaches the threshold of 3.
	h.Report(hash, OutcomeTrap)
	h.Report(hash, OutcomeTrap)
	h.Report(hash, OutcomeOK)
	h.Report(hash, OutcomeTrap)
	if opened := h.Report(hash, OutcomeTrap); opened {
		t.Fatal("breaker opened below threshold")
	}
	if st := h.State(hash); st != BreakerClosed {
		t.Fatalf("state %v, want closed", st)
	}
	if err := h.Allow(hash); err != nil {
		t.Fatalf("closed breaker denied a request: %v", err)
	}

	// Third consecutive failure trips it.
	if opened := h.Report(hash, OutcomeFuel); !opened {
		t.Fatal("threshold-reaching report did not open the breaker")
	}
	if st := h.State(hash); st != BreakerOpen {
		t.Fatalf("state %v, want open", st)
	}
	err := h.Allow(hash)
	if !errors.Is(err, ErrDecoderQuarantined) {
		t.Fatalf("open breaker allowed a request (err=%v)", err)
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 || qe.RetryAfter > 100*time.Millisecond {
		t.Fatalf("quarantine error %v: want a positive RetryAfter within the backoff", err)
	}
	if !h.Quarantined(hash) {
		t.Fatal("Quarantined() false while open before the backoff")
	}

	// After the backoff: exactly one probe is admitted per interval.
	clk.advance(150 * time.Millisecond)
	if h.Quarantined(hash) {
		t.Fatal("Quarantined() true when a probe is due")
	}
	if err := h.Allow(hash); err != nil {
		t.Fatalf("probe not admitted after backoff: %v", err)
	}
	if st := h.State(hash); st != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", st)
	}
	if err := h.Allow(hash); !errors.Is(err, ErrDecoderQuarantined) {
		t.Fatalf("second request rode the probe window: %v", err)
	}

	// Failed probe: reopen, backoff doubled to 200ms.
	if opened := h.Report(hash, OutcomeTrap); !opened {
		t.Fatal("failed probe did not reopen the breaker")
	}
	clk.advance(150 * time.Millisecond)
	if err := h.Allow(hash); !errors.Is(err, ErrDecoderQuarantined) {
		t.Fatal("reopened breaker must honour the doubled backoff")
	}
	clk.advance(100 * time.Millisecond)
	if err := h.Allow(hash); err != nil {
		t.Fatalf("probe not admitted after doubled backoff: %v", err)
	}

	// Successful probe closes the breaker and drops the record.
	h.Report(hash, OutcomeOK)
	if st := h.State(hash); st != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", st)
	}
	if err := h.Allow(hash); err != nil {
		t.Fatalf("closed breaker denied a request: %v", err)
	}

	st := h.Stats()
	if st.Trips != 2 || st.Probes != 2 || st.ProbeSuccesses != 1 {
		t.Fatalf("stats %+v: want trips=2 probes=2 probe_successes=1", st)
	}
	if st.Failures.Traps != 5 || st.Failures.Fuel != 1 {
		t.Fatalf("failure counts %+v: want traps=5 fuel=1", st.Failures)
	}
	if st.Tracked != 0 || st.Open != 0 || st.HalfOpen != 0 {
		t.Fatalf("stats %+v: healthy decoder should be untracked", st)
	}
}

// The backoff must saturate at MaxBackoff, and an unreported probe must
// not wedge the breaker: the next probe is due one backoff later.
func TestBreakerBackoffCapAndUnreportedProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(HealthConfig{Threshold: 1, Backoff: 100 * time.Millisecond, MaxBackoff: 250 * time.Millisecond, now: clk.now})
	hash := testHash(2)

	h.Report(hash, OutcomeTrap) // open, backoff 100ms
	for i := 0; i < 5; i++ {    // fail probes: 200ms, 250ms, 250ms, ...
		clk.advance(time.Second)
		if err := h.Allow(hash); err != nil {
			t.Fatalf("probe %d not admitted: %v", i, err)
		}
		h.Report(hash, OutcomeTrap)
	}
	// Backoff is now pinned at the cap.
	clk.advance(200 * time.Millisecond)
	if err := h.Allow(hash); !errors.Is(err, ErrDecoderQuarantined) {
		t.Fatal("breaker must still be within the capped backoff")
	}
	clk.advance(100 * time.Millisecond)
	if err := h.Allow(hash); err != nil {
		t.Fatalf("probe not admitted after capped backoff: %v", err)
	}

	// Never report the probe's outcome: the breaker stays half-open and
	// admits the next probe one backoff later, no wedge.
	if err := h.Allow(hash); !errors.Is(err, ErrDecoderQuarantined) {
		t.Fatal("second probe admitted inside the same window")
	}
	clk.advance(300 * time.Millisecond)
	if err := h.Allow(hash); err != nil {
		t.Fatalf("breaker wedged after an unreported probe: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	h := NewHealth(HealthConfig{Threshold: -1})
	hash := testHash(3)
	for i := 0; i < 100; i++ {
		h.Report(hash, OutcomeTrap)
	}
	if err := h.Allow(hash); err != nil {
		t.Fatalf("disabled tracker denied a request: %v", err)
	}
	var nilH *Health
	if err := nilH.Allow(hash); err != nil {
		t.Fatalf("nil tracker denied a request: %v", err)
	}
	nilH.Report(hash, OutcomeTrap)
}

// OutcomeFor must indict the decoder only for traps, fuel and watchdog
// kills — never for cancellations or payload-style errors.
func TestOutcomeFor(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OutcomeOK},
		{&vm.Trap{Kind: vm.TrapMemory}, OutcomeTrap},
		{&vm.Trap{Kind: vm.TrapSyscall}, OutcomeTrap},
		{fmt.Errorf("wrapped: %w", &vm.Trap{Kind: vm.TrapIllegal}), OutcomeTrap},
		{&vm.Trap{Kind: vm.TrapFuel}, OutcomeFuel},
		{&vm.WatchdogError{Budget: time.Second}, OutcomeWatchdog},
		{&vm.CanceledError{Cause: context.Canceled}, OutcomeIgnore},
		{errors.New("decoder exit status 1"), OutcomeIgnore},
	}
	for _, c := range cases {
		if got := OutcomeFor(c.err); got != c.want {
			t.Errorf("OutcomeFor(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// Tripping a decoder's breaker quarantine-evicts its SnapCache lines
// (all modes), the fail-fast path leases nothing, and the half-open
// probe rebuilds the snapshot from the decoder bytes.
func TestSnapCacheQuarantine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewSnapCache(SnapCacheConfig{
		VM:     vm.Config{MemSize: 4 << 20},
		Health: HealthConfig{Threshold: 2, Backoff: 100 * time.Millisecond, now: clk.now},
	})
	elf := compile(t, echoSrc)
	elfBytes, _ := elf()
	hash := HashELF(elfBytes)
	builds := 0
	src := func() ([]byte, error) { builds++; return elfBytes, nil }

	// Healthy line under two modes.
	for _, mode := range []uint32{0600, 0644} {
		l, err := c.Get(context.Background(), hash, mode, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		l.Release(false)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2", builds)
	}

	// Two counted failures trip the breaker; both mode lines must go.
	c.Report(hash, OutcomeTrap)
	c.Report(hash, OutcomeTrap)
	if st := c.BreakerState(hash); st != BreakerOpen {
		t.Fatalf("breaker %v, want open", st)
	}
	if c.Contains(hash, 0600) || c.Contains(hash, 0644) {
		t.Fatal("quarantined lines still resident")
	}

	// Fail fast: no lease, no rebuild.
	if _, err := c.Get(context.Background(), hash, 0600, 0, src); !errors.Is(err, ErrDecoderQuarantined) {
		t.Fatalf("quarantined Get returned %v", err)
	}
	if builds != 2 {
		t.Fatalf("fail-fast path rebuilt the snapshot (builds=%d)", builds)
	}
	if n := c.Outstanding(); n != 0 {
		t.Fatalf("Outstanding = %d during quarantine, want 0", n)
	}

	// Probe after backoff: the line is rebuilt, and a success closes.
	clk.advance(150 * time.Millisecond)
	l, err := c.Get(context.Background(), hash, 0600, 0, src)
	if err != nil {
		t.Fatalf("probe Get: %v", err)
	}
	var out bytes.Buffer
	reusable, err := l.VM().RunStream(context.Background(), bytes.NewReader([]byte("hi")), &out, nil, vm.StreamFuel(2))
	if err != nil {
		t.Fatal(err)
	}
	l.Release(reusable)
	c.Report(hash, OutcomeOK)
	if builds != 3 {
		t.Fatalf("probe did not rebuild the quarantined snapshot (builds=%d)", builds)
	}
	if st := c.BreakerState(hash); st != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	st := c.Stats()
	if st.Quarantined != 2 {
		t.Fatalf("quarantined evictions = %d, want 2 (both modes)", st.Quarantined)
	}
	if st.Health.Trips != 1 || st.Health.ProbeSuccesses != 1 {
		t.Fatalf("health stats %+v: want one trip, one probe success", st.Health)
	}
}

// Shrink must cut resident snapshot bytes to the target (evicting even
// recently used lines) and drop idle VMs, while in-flight leases drain
// through the orphan path.
func TestSnapCacheShrink(t *testing.T) {
	c := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}})
	elfs := []func() ([]byte, error){
		compile(t, echoSrc),
		compile(t, leakySrc),
	}
	var hashes [][32]byte
	for _, elf := range elfs {
		b, _ := elf()
		hashes = append(hashes, HashELF(b))
		l, err := c.Get(context.Background(), HashELF(b), 0644, 0, elf)
		if err != nil {
			t.Fatal(err)
		}
		l.Release(false)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("resident lines = %d, want 2", got)
	}
	before := c.Stats().Bytes
	if before <= 0 {
		t.Fatal("no resident bytes to shrink")
	}
	freed := c.Shrink(0)
	if freed != before {
		t.Fatalf("Shrink(0) freed %d of %d bytes", freed, before)
	}
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Fatalf("lines=%d bytes=%d after Shrink(0), want empty", c.Len(), c.Stats().Bytes)
	}
	if c.Stats().Shrinks != 1 {
		t.Fatalf("shrinks = %d, want 1", c.Stats().Shrinks)
	}
	// The cache still serves: lines rebuild on demand.
	l, err := c.Get(context.Background(), hashes[0], 0644, 0, elfs[0])
	if err != nil {
		t.Fatal(err)
	}
	l.Release(false)
}

// Satellite pin: a request canceled while blocked in the MaxLive
// lease-wait reports its wait in the queue span stage (not lease) and
// surfaces the context error so the serving layer can file it in the
// 499 cell — never as a pool failure.
func TestLeaseWaitCancelAccounting(t *testing.T) {
	elf := compile(t, echoSrc)
	p := New(Options{MaxLive: 1})

	l1, err := p.Get(context.Background(), "echo", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}

	ctx, sp := obs.WithSpan(context.Background())
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := p.Get(ctx, "echo", 0644, elf)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the waiter block on the slot
	cancel()
	err = <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled lease wait returned %v, want a context.Canceled chain", err)
	}
	if q := sp.Get(obs.StageQueue); q < 20*time.Millisecond {
		t.Fatalf("queue stage = %v, want the blocked slot wait (>=20ms)", q)
	}
	if lease := sp.Get(obs.StageLease); lease > 5*time.Millisecond {
		t.Fatalf("lease stage = %v: the canceled slot wait leaked into lease", lease)
	}
	l1.Release(false)
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("Outstanding = %d, want 0", n)
	}
}
