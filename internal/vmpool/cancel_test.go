package vmpool

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"vxa/internal/vm"
)

// TestGetBlocksUntilReleaseOrCancel: with MaxLive, Get blocks while all
// slots are leased, wakes when one is released, and honours context
// cancellation while waiting.
func TestGetBlocksUntilReleaseOrCancel(t *testing.T) {
	elf := compile(t, echoSrc)
	p := New(Options{MaxLive: 1})
	ctx := context.Background()

	l1, err := p.Get(ctx, "echo", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}

	// A bounded wait must fail with the context error once the deadline
	// passes, leaving the pool intact.
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, err := p.Get(short, "echo", 0644, elf); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Get returned %v, want DeadlineExceeded", err)
	}

	// A waiter must wake when the slot frees.
	got := make(chan error, 1)
	go func() {
		l2, err := p.Get(ctx, "echo", 0644, elf)
		if err == nil {
			l2.Release(false)
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block
	l1.Release(false)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after Release")
	}
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("Outstanding = %d, want 0", n)
	}
}

// TestReleaseReset: a canceled lease goes back through the pristine
// reset — Outstanding drops, the VM is parked idle, and the next lease
// resumes it with clean state.
func TestReleaseResetParksPristineVM(t *testing.T) {
	elf := compile(t, echoSrc)
	p := New(Options{})
	ctx := context.Background()

	l, err := p.Get(ctx, "echo", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}
	// Run half a stream, then abandon it as a cancellation would.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := l.VM().RunStream(cctx, bytes.NewReader([]byte("junk state")), io.Discard, nil, vm.StreamFuel(16)); !vm.IsCanceled(err) {
		t.Fatalf("RunStream under dead context returned %v, want CanceledError", err)
	}
	l.ReleaseReset()

	if n := p.Outstanding(); n != 0 {
		t.Fatalf("Outstanding = %d after ReleaseReset, want 0", n)
	}
	if n := p.IdleCount(); n != 1 {
		t.Fatalf("IdleCount = %d, want the reset VM parked", n)
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats %+v: want exactly one reset", st)
	}

	// The parked VM must serve a clean stream.
	l2, err := p.Get(ctx, "echo", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("post-cancel stream")
	var out bytes.Buffer
	reusable, err := l2.VM().RunStream(ctx, bytes.NewReader(payload), &out, nil, vm.StreamFuel(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	l2.Release(reusable)
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatalf("echo after reset = %q, want %q", out.Bytes(), payload)
	}
}

// TestReleaseResetFreesMaxLiveSlot: the cancellation path releases the
// MaxLive slot exactly like a normal release.
func TestReleaseResetFreesMaxLiveSlot(t *testing.T) {
	elf := compile(t, echoSrc)
	p := New(Options{MaxLive: 1})
	ctx := context.Background()

	l, err := p.Get(ctx, "echo", 0644, elf)
	if err != nil {
		t.Fatal(err)
	}
	l.ReleaseReset()
	short, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	l2, err := p.Get(short, "echo", 0644, elf)
	if err != nil {
		t.Fatalf("slot not freed by ReleaseReset: %v", err)
	}
	l2.Release(false)
}
