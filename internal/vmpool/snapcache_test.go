package vmpool

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"vxa/internal/vm"
)

// cacheStream drives one stream on a cache lease and returns the lease
// to the pool. want, when non-nil, is the expected decoded output (only
// the echo decoder reproduces its input; the leaky decoder emits its
// previous stream's buffer).
func cacheStream(t testing.TB, c *SnapCache, hash [32]byte, mode uint32, scope uint64, elf func() ([]byte, error), payload, want []byte) {
	if t != nil {
		t.Helper()
	}
	lease, err := c.Get(context.Background(), hash, mode, scope, elf)
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		return
	}
	var out bytes.Buffer
	reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), &out, nil, vm.StreamFuel(len(payload)))
	if err != nil {
		lease.Release(false)
		if t != nil {
			t.Fatal(err)
		}
		return
	}
	lease.Release(reusable)
	if t != nil && want != nil && !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("decoder returned %d bytes, want %d", out.Len(), len(want))
	}
}

func mustELF(t *testing.T, elf func() ([]byte, error)) []byte {
	t.Helper()
	b, err := elf()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapCacheHitMiss: the second request for the same content+mode is
// a hit on the same snapshot line; different content is a different
// line.
func TestSnapCacheHitMiss(t *testing.T) {
	echo := compile(t, echoSrc)
	leaky := compile(t, leakySrc)
	echoHash := HashELF(mustELF(t, echo))
	leakyHash := HashELF(mustELF(t, leaky))
	if echoHash == leakyHash {
		t.Fatal("distinct decoders share a content hash")
	}

	c := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}})
	payload := []byte("content addressed")
	cacheStream(t, c, echoHash, 0644, 0, echo, payload, payload)
	cacheStream(t, c, echoHash, 0644, 0, echo, payload, payload)
	cacheStream(t, c, leakyHash, 0644, 0, leaky, payload, nil)

	s := c.Stats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 misses and 1 hit", s)
	}
	if s.Entries != 2 || s.Bytes <= 0 {
		t.Fatalf("stats = %+v, want 2 resident entries with a nonzero footprint", s)
	}
	if s.VM.Steps == 0 || s.VM.Syscalls == 0 {
		t.Fatalf("aggregated engine counters empty: %+v", s.VM)
	}
	if !c.Contains(echoHash, 0644) || c.Contains(echoHash, 0600) {
		t.Fatal("Contains disagrees with the requests made")
	}
}

// TestSnapCacheSiblingImport: a new security mode of an already-warm
// decoder imports the sibling's translated blocks, so its first VM
// translates nothing.
func TestSnapCacheSiblingImport(t *testing.T) {
	echo := compile(t, echoSrc)
	hash := HashELF(mustELF(t, echo))
	c := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}})
	payload := bytes.Repeat([]byte("warm"), 64)

	// Warm mode 0644: run + release absorbs the block cache into the
	// snapshot.
	cacheStream(t, c, hash, 0644, 0, echo, payload, payload)

	// Mode 0600 is a distinct cache entry; its snapshot must arrive
	// pre-translated via the sibling import.
	lease, err := c.Get(context.Background(), hash, 0600, 0, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release(false)
	if _, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), io.Discard, nil, vm.StreamFuel(len(payload))); err != nil {
		t.Fatal(err)
	}
	if built := lease.VM().Stats().BlocksBuilt; built != 0 {
		t.Fatalf("sibling-mode VM built %d blocks, want 0 (block import failed)", built)
	}
}

// TestSnapCacheEviction: a byte budget sized for one entry evicts the
// least-recently-used line, and a re-request rebuilds it (a new miss).
func TestSnapCacheEviction(t *testing.T) {
	echo := compile(t, echoSrc)
	leaky := compile(t, leakySrc)
	echoHash := HashELF(mustELF(t, echo))
	leakyHash := HashELF(mustELF(t, leaky))

	// Measure one entry's footprint, then budget for just under two.
	probe := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}})
	cacheStream(t, probe, echoHash, 0644, 0, echo, []byte("probe"), nil)
	one := probe.Stats().Bytes

	c := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}, MaxBytes: one + one/2})
	cacheStream(t, c, echoHash, 0644, 0, echo, []byte("a"), []byte("a"))
	cacheStream(t, c, leakyHash, 0644, 0, leaky, []byte("b"), nil)
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly one eviction leaving one resident entry", s)
	}
	if c.Contains(echoHash, 0644) || !c.Contains(leakyHash, 0644) {
		t.Fatal("evicted the wrong entry: echo was least recently used")
	}
	if s.Bytes > c.cfg.MaxBytes {
		t.Fatalf("resident bytes %d over budget %d", s.Bytes, c.cfg.MaxBytes)
	}

	// The evicted line rebuilds on demand.
	cacheStream(t, c, echoHash, 0644, 0, echo, []byte("back"), []byte("back"))
	if s := c.Stats(); s.Misses != 3 {
		t.Fatalf("misses = %d after re-request of an evicted line, want 3", s.Misses)
	}
}

// TestSnapCacheRaceStress hammers one cache from many goroutines with a
// budget small enough to keep hit, miss, rebuild and evict all racing,
// while Drain/Stats/Contains observers run. Run under -race; the
// assertions are liveness plus counter coherence.
func TestSnapCacheRaceStress(t *testing.T) {
	echo := compile(t, echoSrc)
	leaky := compile(t, leakySrc)
	elves := []func() ([]byte, error){echo, leaky}
	hashes := []([32]byte){HashELF(mustELF(t, echo)), HashELF(mustELF(t, leaky))}
	modes := []uint32{0600, 0644}

	// Budget for roughly one entry: every Get with the other decoder
	// resident evicts, so the miss/evict/rebuild path stays hot.
	probe := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}})
	cacheStream(t, probe, hashes[0], 0644, 0, echo, []byte("probe"), nil)
	one := probe.Stats().Bytes

	c := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}, MaxBytes: one + one/2})
	const workers, iters = 6, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			payload := []byte("race stress payload")
			for i := 0; i < iters; i++ {
				k := rng.Intn(len(elves))
				cacheStream(nil, c, hashes[k], modes[rng.Intn(len(modes))], uint64(rng.Intn(3)), elves[k], payload, nil)
				switch rng.Intn(4) {
				case 0:
					c.Drain()
				case 1:
					_ = c.Stats()
				case 2:
					c.Contains(hashes[k], 0644)
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.Stats()
	if s.Hits+s.Misses != workers*iters {
		t.Fatalf("hits %d + misses %d != %d requests", s.Hits, s.Misses, workers*iters)
	}
	if s.Bytes < 0 || s.Entries > 4 {
		t.Fatalf("incoherent final stats: %+v", s)
	}
	// The cache must still serve correctly after the storm.
	cacheStream(t, c, hashes[0], 0644, 0, echo, []byte("after the storm"), []byte("after the storm"))
}

// TestSnapCacheScopeIsolation is the multi-tenant §2.4 extension: the
// leaky decoder parks with client A's stream in its static buffer, and
// client B — same decoder content, same security mode, different trust
// scope — must receive a pristine VM, not A's residue. Scope A itself,
// resuming in place, is allowed to (and does) see its own prior stream:
// that is the intra-client reuse the paper describes.
func TestSnapCacheScopeIsolation(t *testing.T) {
	leaky := compile(t, leakySrc)
	hash := HashELF(mustELF(t, leaky))
	c := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}})
	secret := bytes.Repeat([]byte("A-secret"), 8) // exactly the 64-byte buffer

	run := func(scope uint64, payload []byte) []byte {
		t.Helper()
		lease, err := c.Get(context.Background(), hash, 0644, scope, leaky)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), &out, nil, vm.StreamFuel(len(payload)))
		if err != nil {
			lease.Release(false)
			t.Fatal(err)
		}
		lease.Release(reusable)
		return out.Bytes()
	}

	scopeA, scopeB := NextScope(), NextScope()
	run(scopeA, secret) // A's secret now sits in the parked VM's buffer

	// Same scope resumes in place: A sees its own previous stream.
	if got := run(scopeA, []byte("A again")); !bytes.Equal(got, secret) {
		t.Fatalf("scope A resume did not see its own residue (got %q)", got)
	}
	// Different scope must get a pristine image: all zeros, no secret.
	if got := run(scopeB, []byte("B stream")); bytes.Contains(got, []byte("A-secret")) {
		t.Fatalf("client B received client A's residue: %q", got)
	} else if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatalf("scope B's VM was not pristine (got %x)", got)
	}
}

// TestSnapCacheEvictionKeepsInFlightCounters pins the metrics fix for
// evicted lines with leases still in flight: a stream released AFTER
// its pool's cache entry was evicted (and the line later rebuilt) must
// still appear in the aggregated engine counters. Before orphan-pool
// tracking, eviction snapshotted the pool's counters immediately, so
// in-flight lease deltas vanished and a rebuild looked like a counter
// reset.
func TestSnapCacheEvictionKeepsInFlightCounters(t *testing.T) {
	echo := compile(t, echoSrc)
	leaky := compile(t, leakySrc)
	echoHash := HashELF(mustELF(t, echo))
	leakyHash := HashELF(mustELF(t, leaky))

	// A 1-byte budget keeps only the most recently used line resident.
	c := NewSnapCache(SnapCacheConfig{VM: vm.Config{MemSize: 4 << 20}, MaxBytes: 1})

	// Check out a lease on the echo line and hold it across the
	// eviction caused by building the leaky line.
	lease, err := c.Get(context.Background(), echoHash, 0644, 0, echo)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("counted even after eviction")
	cacheStream(t, c, leakyHash, 0644, 0, leaky, payload, nil)
	if c.Contains(echoHash, 0644) {
		t.Fatal("echo line still resident; eviction did not happen")
	}
	preRelease := c.Stats().VM.Steps

	// Run the stream on the orphaned pool's lease and release it.
	var out bytes.Buffer
	reusable, err := lease.VM().RunStream(context.Background(), bytes.NewReader(payload), &out, nil, vm.StreamFuel(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	lease.Release(reusable)
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatalf("echo decoded %d bytes, want %d", out.Len(), len(payload))
	}

	// Rebuild the echo line (a fresh pool) and check nothing was lost.
	cacheStream(t, c, echoHash, 0644, 0, echo, payload, payload)
	s := c.Stats()
	if s.VM.Steps <= preRelease {
		t.Fatalf("in-flight lease's steps lost at eviction: %d -> %d", preRelease, s.VM.Steps)
	}
	if s.VM.UopsFused == 0 || s.VM.SuperblocksFormed == 0 {
		t.Fatalf("optimizer counters missing from aggregated stats: %+v", s.VM)
	}
	if s.Evictions == 0 {
		t.Fatalf("expected at least one eviction: %+v", s)
	}
}
