package vmpool

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vxa/internal/artifact"
	"vxa/internal/elf32"
	"vxa/internal/fault"
	"vxa/internal/obs"
	"vxa/internal/vm"
)

// SnapCache is a content-addressed cache of pristine decoder snapshots:
// entries are keyed by the SHA-256 of the decoder ELF plus the stream's
// security mode, so every archive, Reader and worker that carries the
// same decoder bytes shares one snapshot — and, through AbsorbBlocks,
// one translated micro-op block cache. Translation cost is paid once per
// decoder content fleet-wide, not once per archive.
//
// Each resident entry owns a VM pool (Pool) whose codec key is the
// content hash, so leases inherit the full §2.4 reuse policy: parked
// VMs resume in place, a mode change rewinds to the pristine snapshot.
// Residency is bounded by a byte budget over the snapshots' Footprint;
// least-recently-used entries are evicted, their idle VMs dropped.
// Entries being rebuilt after an eviction re-import the block caches of
// surviving siblings with the same content hash, so even an evicted
// decoder's translation work outlives it.
//
// A SnapCache is safe for concurrent use.
type SnapCache struct {
	cfg    SnapCacheConfig
	health *Health

	mu      sync.Mutex
	entries map[CacheKey]*cacheEntry
	lru     *list.List // resident entries; front = most recently used
	used    int64

	hits, misses, evictions uint64
	quarantined, shrinks    uint64
	retired                 Stats    // pool counters of fully drained evicted entries
	retiredVM               vm.Stats // engine counters of fully drained evicted entries

	// orphans are evicted pools with leases still in flight; each keeps
	// pinning its snapshot (and that snapshot's footprint, recorded at
	// eviction) until the last lease releases. orphanBytes is the sum of
	// those pinned footprints — resident memory the LRU budget no longer
	// covers but the process still holds.
	orphans     []orphanPool
	orphanBytes int64
}

// orphanPool pairs an evicted-but-not-yet-drained pool with the
// snapshot footprint it pins.
type orphanPool struct {
	pool  *Pool
	bytes int64
}

// SnapCacheConfig configures a SnapCache.
type SnapCacheConfig struct {
	// VM is the per-VM configuration every cached decoder runs under;
	// the zero value selects vm defaults. Fixed for the cache lifetime:
	// snapshots are only interchangeable within one configuration.
	VM vm.Config
	// MaxBytes is the resident-snapshot byte budget (memory image +
	// translated blocks, per Snapshot.Footprint). The most recently used
	// entry is always retained, even over budget. <= 0 selects
	// DefaultSnapCacheBytes.
	MaxBytes int64
	// MaxIdlePerKey bounds idle VMs retained by each entry's pool;
	// 0 selects GOMAXPROCS.
	MaxIdlePerKey int
	// Health configures the per-decoder circuit breaker (see health.go).
	// The zero value selects the defaults; Threshold < 0 disables
	// health tracking.
	Health HealthConfig
	// Artifacts, when non-nil, is the persistent tier: cache misses
	// probe it before building from the decoder ELF, successful builds
	// are written back, and FlushArtifacts re-persists entries whose
	// absorbed block cache has grown. Every load failure falls back to
	// the ELF build path — the store is an accelerator, never an
	// authority.
	Artifacts *artifact.Store
}

// DefaultSnapCacheBytes is the default resident-snapshot byte budget.
const DefaultSnapCacheBytes = 1 << 30

// CacheKey identifies one cached decoder line: the decoder executable
// by content, plus the security attributes its VMs run under.
type CacheKey struct {
	Hash [32]byte // SHA-256 of the decoder ELF
	Mode uint32   // Unix permission bits (§2.4 security attributes)
}

// HashELF returns the content address of a decoder executable.
func HashELF(elf []byte) [32]byte { return sha256.Sum256(elf) }

// cacheEntry is one decoder line. once guards the build; elem is nil
// until the entry is resident (and again after eviction).
type cacheEntry struct {
	key  CacheKey
	once sync.Once
	err  error

	snap  *vm.Snapshot
	pool  *Pool
	bytes int64
	elem  *list.Element

	// artifactDur is how much of the build went to the persistent-store
	// probe (zero when no store is configured); savedBlocks/savedSBs are
	// the snapshot block and superblock counts at the last artifact save
	// or load, the staleness signals FlushArtifacts re-saves on.
	artifactDur time.Duration
	savedBlocks int
	savedSBs    int
}

// SnapCacheStats is a point-in-time view of the cache.
type SnapCacheStats struct {
	Hits      uint64 `json:"hits"` // includes waiters coalesced onto an in-flight build
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Bytes is the live footprint of resident entries (memory image +
	// absorbed block cache, refreshed at scrape time — not the stale
	// build-time size); OrphanBytes is the additional footprint pinned
	// by evicted lines whose leases are still in flight. Total process
	// snapshot residency is the sum of the two; only Bytes is subject to
	// the MaxBytes budget, since eviction cannot release orphan pins.
	Bytes       int64 `json:"bytes"`
	OrphanBytes int64 `json:"orphan_bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	// Quarantined counts lines evicted because their decoder's breaker
	// tripped; Shrinks counts emergency Shrink passes.
	Quarantined uint64 `json:"quarantined"`
	Shrinks     uint64 `json:"shrinks"`
	// Health is the decoder circuit-breaker view.
	Health HealthStats `json:"health"`
	// Pool and VM aggregate the per-entry pool and engine counters,
	// including those of evicted entries. An evicted entry's pool is
	// retired only after its last in-flight lease is released (orphan
	// pools are aggregated live until then), so a released stream's
	// counters survive eviction and rebuild of its line.
	Pool Stats    `json:"pool"`
	VM   vm.Stats `json:"vm"`
}

// NewSnapCache creates an empty cache.
func NewSnapCache(cfg SnapCacheConfig) *SnapCache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultSnapCacheBytes
	}
	if cfg.MaxIdlePerKey <= 0 {
		cfg.MaxIdlePerKey = runtime.GOMAXPROCS(0)
	}
	return &SnapCache{
		cfg:     cfg,
		health:  NewHealth(cfg.Health),
		entries: make(map[CacheKey]*cacheEntry),
		lru:     list.New(),
	}
}

// poolKey is the content hash as the entry pool's codec identity.
func poolKey(hash [32]byte) string { return hex.EncodeToString(hash[:]) }

// Get leases a VM for the decoder with the given content hash under the
// given security mode, building and caching the snapshot on a miss. The
// elf callback supplies the decoder bytes; it is invoked only on a miss
// (concurrent misses for one key coalesce onto a single build). The
// caller must verify that hash is the SHA-256 of the bytes elf returns —
// the cache trusts it, that's the point of content addressing.
//
// scope is the caller's trust-scope token (one per client/Reader; 0 for
// a single trusted tenant). The snapshot and its warm translation cache
// are shared across all scopes — they are pristine, immutable decoder
// state — but a parked VM, which carries residual memory of the streams
// it decoded, is resumed in place only within the scope that parked it.
// Any other scope receives a VM rewound to the pristine snapshot, so a
// malicious decoder embedded in two clients' archives cannot carry one
// client's data into the other's output.
//
// ctx bounds the wait for a lease slot when the entry's pool caps
// in-flight leases (see Options.MaxLive); canceling it while waiting
// returns the context error.
func (c *SnapCache) Get(ctx context.Context, hash [32]byte, mode uint32, scope uint64, elf func() ([]byte, error)) (*Lease, error) {
	// Quarantine gate: an open breaker fails the request here, before
	// any cache or pool work — the fail-fast path costs one mutex
	// acquisition and leases nothing. A half-open probe passes through.
	if err := c.health.Allow(hash); err != nil {
		return nil, err
	}
	key := CacheKey{Hash: hash, Mode: mode}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{key: key}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
	}
	c.mu.Unlock()

	// The build (or the coalesced wait on another request's in-flight
	// build) is the content-addressed cold path; attribute it to the
	// request's snapshot stage, with the slice spent probing/loading the
	// persistent artifact store broken out as the artifact stage. A
	// resident hit passes through in nanoseconds and contributes nothing
	// visible; coalesced waiters attribute the artifact share of however
	// long they actually waited.
	buildStart := time.Now()
	e.once.Do(func() { c.build(e, elf) })
	elapsed := time.Since(buildStart)
	if d := e.artifactDur; d > 0 {
		if d > elapsed {
			d = elapsed
		}
		obs.SpanFrom(ctx).Add(obs.StageArtifact, d)
		elapsed -= d
	}
	obs.SpanFrom(ctx).Add(obs.StageSnapshot, elapsed)
	if e.err != nil {
		// Drop the failed entry so a later Get retries the build.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.pool.GetScoped(ctx, poolKey(hash), mode, scope, nil)
}

// NextScope returns a fresh trust-scope token for SnapCache.Get. Each
// client-facing unit of work (a Reader, a session) takes one.
func NextScope() uint64 { return scopeCounter.Add(1) }

var scopeCounter atomic.Uint64

// resetSpare rewinds the freshly built spare VM onto its snapshot after
// a sibling block import. A hook so tests can exercise the (otherwise
// unreachable in-process) failure path.
var resetSpare = func(v *vm.VM, s *vm.Snapshot) error { return v.Reset(s) }

// build constructs the entry's snapshot and pool, then makes it
// resident, evicting over-budget entries. Runs outside the cache lock:
// artifact load / ELF fetch + parse + image copy must not serialize
// unrelated decoders.
//
// The persistent artifact store, when configured, is probed first: a
// verified artifact yields the snapshot (pristine image + warm uop
// block cache) without touching the decoder ELF at all. Any load
// failure — absent, truncated, corrupt, foreign engine version — falls
// through to the ELF build path, whose result is then written back.
func (c *SnapCache) build(e *cacheEntry, elf func() ([]byte, error)) {
	if elf == nil {
		e.err = fmt.Errorf("vmpool: snapcache miss for %s with no elf source", poolKey(e.key.Hash))
		return
	}
	// Chaos hook: an injected build failure exercises the retry path
	// (the failed entry is dropped, so a later Get rebuilds) and the
	// breaker's build-failure accounting.
	if err := fault.Inject(fault.SnapshotBuild); err != nil {
		e.err = fmt.Errorf("vmpool: snapshot build: %w", err)
		c.Report(e.key.Hash, OutcomeBuildFail)
		return
	}

	var snap *vm.Snapshot
	var v *vm.VM
	fromStore := false
	if store := c.cfg.Artifacts; store != nil {
		probeStart := time.Now()
		if s, err := store.Load(e.key.Hash, c.cfg.VM); err == nil {
			snap, fromStore = s, true
			e.savedBlocks, e.savedSBs = s.BlockCount(), s.SBCount()
		}
		// The store keeps its own hit/miss/fallback counters; a failed
		// load deliberately leaves no trace on the entry beyond them.
		e.artifactDur = time.Since(probeStart)
	}
	if snap == nil {
		elfBytes, err := elf()
		if err != nil {
			// A failed decoder *fetch* is archive/backend I/O, not
			// evidence against the decoder: no health report.
			e.err = err
			return
		}
		v, err = elf32.NewVM(elfBytes, c.cfg.VM)
		if err != nil {
			e.err = err
			c.Report(e.key.Hash, OutcomeBuildFail)
			return
		}
		snap = v.Snapshot()
	}

	// A resident sibling under another security mode already paid for
	// translation: import its shared block cache. Safe because both
	// entries address the same decoder bytes.
	c.mu.Lock()
	var sibling *cacheEntry
	for k, se := range c.entries {
		if k.Hash == e.key.Hash && k.Mode != e.key.Mode && se.elem != nil {
			sibling = se
			break
		}
	}
	c.mu.Unlock()
	if sibling != nil && snap.ImportBlocks(sibling.snap.ExportBlocks()) > 0 && v != nil {
		// The spare VM was captured before the import; rewind it so its
		// private block map picks up the imported fragments too.
		if err := resetSpare(v, snap); err != nil {
			e.err = err
			c.Report(e.key.Hash, OutcomeBuildFail)
			return
		}
	}
	if v == nil {
		// Artifact path: materialize the spare from the loaded snapshot
		// (warm block cache included).
		v = snap.NewVM()
	}

	pool := New(Options{VM: c.cfg.VM, MaxIdlePerKey: c.cfg.MaxIdlePerKey})
	pool.Seed(poolKey(e.key.Hash), snap, v)
	e.snap, e.pool, e.bytes = snap, pool, snap.Footprint()

	c.mu.Lock()
	e.elem = c.lru.PushFront(e)
	c.used += e.bytes
	c.evictLocked(e)
	c.mu.Unlock()

	// Persist a fresh ELF build so the next process skips it. Best
	// effort: a full disk or read-only store must never fail the build
	// (the store's save-error counter records it).
	if store := c.cfg.Artifacts; store != nil && !fromStore {
		if store.Save(e.key.Hash, c.cfg.VM, snap) == nil {
			c.mu.Lock()
			e.savedBlocks, e.savedSBs = snap.BlockCount(), snap.SBCount()
			c.mu.Unlock()
		}
	}
}

// refreshFootprintLocked re-reads the entry's live Footprint — absorbed
// blocks grow it after build — and folds the delta into the cache's
// used total, so the LRU budget, Shrink and Stats all account for what
// the snapshot actually pins rather than its size at build time.
// Caller holds c.mu.
func (c *SnapCache) refreshFootprintLocked(e *cacheEntry) {
	if e.snap == nil {
		return
	}
	nf := e.snap.Footprint()
	c.used += nf - e.bytes
	e.bytes = nf
}

// refreshAllFootprintsLocked refreshes every resident entry. Caller
// holds c.mu. O(resident decoders × their blocks) — both small.
func (c *SnapCache) refreshAllFootprintsLocked() {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		c.refreshFootprintLocked(el.Value.(*cacheEntry))
	}
}

// evictLocked drops least-recently-used entries until the budget holds,
// never evicting keep (the entry just touched): one oversized decoder
// must still be servable. Footprints are refreshed first so the budget
// decision sees post-absorb residency, not build-time sizes.
func (c *SnapCache) evictLocked(keep *cacheEntry) {
	c.refreshAllFootprintsLocked()
	for c.used > c.cfg.MaxBytes {
		back := c.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*cacheEntry)
		if victim == keep {
			return
		}
		c.lru.Remove(back)
		victim.elem = nil
		delete(c.entries, victim.key)
		c.used -= victim.bytes
		c.evictions++
		// Free the victim's idle VMs, then retire its counters — but
		// only once no lease is in flight: leases fold their deltas
		// into the pool at release, and retiring early would lose them
		// (a rebuild of the same line would then appear to reset the
		// fleet counters). A pool with outstanding leases is parked on
		// the orphan list, which compactOrphansLocked drains here and
		// in Stats(), so an orphaned pool (and the snapshot it pins)
		// never outlives its last lease by more than one eviction or
		// metrics scrape. While parked, the snapshot footprint it pins
		// stays visible as OrphanBytes.
		victim.pool.Drain()
		c.orphans = append(c.orphans, orphanPool{victim.pool, victim.bytes})
		c.orphanBytes += victim.bytes
		c.compactOrphansLocked()
	}
}

// compactOrphansLocked folds every fully drained orphan pool into the
// retired totals and drops it, releasing the snapshot it pinned (and
// its OrphanBytes share). Caller holds c.mu.
func (c *SnapCache) compactOrphansLocked() {
	keep := c.orphans[:0]
	for _, o := range c.orphans {
		if o.pool.Outstanding() == 0 {
			addPoolStats(&c.retired, o.pool.Stats())
			addVMStats(&c.retiredVM, o.pool.VMStats(), vm.Stats{})
			c.orphanBytes -= o.bytes
			continue
		}
		keep = append(keep, o)
	}
	for i := len(keep); i < len(c.orphans); i++ {
		c.orphans[i] = orphanPool{}
	}
	c.orphans = keep
}

// addPoolStats accumulates pool counters.
func addPoolStats(dst *Stats, s Stats) {
	dst.Snapshots += s.Snapshots
	dst.Builds += s.Builds
	dst.Resets += s.Resets
	dst.Resumes += s.Resumes
	dst.Discards += s.Discards
}

// Report feeds one stream (or build) outcome into the decoder's health
// record. When the report trips the breaker open, every resident line
// for that content hash is quarantine-evicted: the snapshot may have
// been poisoned by whatever broke the decoder, so the eventual
// half-open probe rebuilds it from the decoder bytes rather than
// resharing it.
func (c *SnapCache) Report(hash [32]byte, o Outcome) {
	if c.health.Report(hash, o) {
		c.Quarantine(hash)
	}
}

// Health returns the decoder circuit-breaker view.
func (c *SnapCache) Health() HealthStats { return c.health.Stats() }

// BreakerState returns the breaker state for one decoder content hash.
func (c *SnapCache) BreakerState(hash [32]byte) BreakerState { return c.health.State(hash) }

// Quarantined reports whether requests for the decoder would currently
// fail fast (breaker open and the next probe not yet due). Unlike
// Allow, it never admits a probe, so it is safe to poll.
func (c *SnapCache) Quarantined(hash [32]byte) bool { return c.health.Quarantined(hash) }

// CheckQuarantine returns the fail-fast *QuarantineError Get would
// return for the decoder, or nil when requests may proceed. It never
// admits a probe — serving layers use it to reject quarantined work
// before paying for admission, without stealing the probe slot.
func (c *SnapCache) CheckQuarantine(hash [32]byte) error { return c.health.Check(hash) }

// Quarantine evicts every resident line for the content hash (all
// security modes — the decoder bytes are the same) and reports how
// many lines were dropped. Idle VMs are freed; in-flight leases drain
// through the orphan list exactly as with budget evictions.
func (c *SnapCache) Quarantine(hash [32]byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, e := range c.entries {
		if key.Hash != hash || e.elem == nil {
			continue
		}
		c.refreshFootprintLocked(e)
		c.lru.Remove(e.elem)
		e.elem = nil
		delete(c.entries, key)
		c.used -= e.bytes
		c.quarantined++
		e.pool.Drain()
		c.orphans = append(c.orphans, orphanPool{e.pool, e.bytes})
		c.orphanBytes += e.bytes
		n++
	}
	c.compactOrphansLocked()
	return n
}

// Outstanding reports leases checked out and not yet released across
// every resident and orphaned pool — the serving layer's leak
// detector: it must return to zero when the request stream drains.
func (c *SnapCache) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		n += el.Value.(*cacheEntry).pool.Outstanding()
	}
	for _, o := range c.orphans {
		n += o.pool.Outstanding()
	}
	return n
}

// Shrink is the memory-pressure emergency valve: it evicts
// least-recently-used lines until resident snapshot bytes are at most
// target (unlike budget eviction, even the most recently used line may
// go — snapshots rebuild on demand), then drops every surviving line's
// idle VMs. It returns the snapshot bytes freed.
func (c *SnapCache) Shrink(target int64) int64 {
	if target < 0 {
		target = 0
	}
	c.mu.Lock()
	c.refreshAllFootprintsLocked()
	freed := int64(0)
	for c.used > target {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		victim.elem = nil
		delete(c.entries, victim.key)
		c.used -= victim.bytes
		freed += victim.bytes
		c.evictions++
		victim.pool.Drain()
		c.orphans = append(c.orphans, orphanPool{victim.pool, victim.bytes})
		c.orphanBytes += victim.bytes
	}
	c.compactOrphansLocked()
	c.shrinks++
	pools := make([]*Pool, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		pools = append(pools, el.Value.(*cacheEntry).pool)
	}
	c.mu.Unlock()
	for _, p := range pools {
		p.Drain()
	}
	return freed
}

// Stats returns a point-in-time view of the cache counters. Evicted
// pools whose last lease has been released are compacted into the
// retired totals; the rest are aggregated live, so no released
// stream's counters are ever lost to an eviction or rebuild.
func (c *SnapCache) Stats() SnapCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compactOrphansLocked()
	c.refreshAllFootprintsLocked()
	s := SnapCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.lru.Len(), Bytes: c.used, MaxBytes: c.cfg.MaxBytes,
		OrphanBytes: c.orphanBytes,
		Quarantined: c.quarantined, Shrinks: c.shrinks,
		Health: c.health.Stats(),
		Pool:   c.retired, VM: c.retiredVM,
	}
	for _, o := range c.orphans {
		addPoolStats(&s.Pool, o.pool.Stats())
		addVMStats(&s.VM, o.pool.VMStats(), vm.Stats{})
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		addPoolStats(&s.Pool, e.pool.Stats())
		addVMStats(&s.VM, e.pool.VMStats(), vm.Stats{})
	}
	return s
}

// FlushArtifacts re-persists every resident entry whose absorbed block
// cache has grown since its artifact was last written, so translation
// work done by live streams reaches the persistent tier (and through
// vxwarm pack, the rest of the fleet). The serving layer calls it
// periodically and once at shutdown. Serialization and fsync run
// outside the cache lock. Returns the number of artifacts written.
func (c *SnapCache) FlushArtifacts() int {
	store := c.cfg.Artifacts
	if store == nil {
		return 0
	}
	// flushMinNewBlocks is the staleness threshold: rewriting a
	// multi-megabyte artifact to persist one newly absorbed fragment is
	// a bad trade, growing by a translation burst is worth an fsync.
	// Superblocks are different: each one is the product of hot-path
	// tracing across many streams, so even a single new superblock
	// justifies the rewrite — losing it on restart re-pays the whole
	// warm-up that produced it.
	const flushMinNewBlocks = 8
	type job struct {
		e      *cacheEntry
		snap   *vm.Snapshot
		blocks int
		sbs    int
	}
	c.mu.Lock()
	var jobs []job
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		bc, sc := e.snap.BlockCount(), e.snap.SBCount()
		if bc-e.savedBlocks >= flushMinNewBlocks || sc > e.savedSBs {
			jobs = append(jobs, job{e, e.snap, bc, sc})
		}
	}
	c.mu.Unlock()
	n := 0
	for _, j := range jobs {
		if store.Save(j.e.key.Hash, c.cfg.VM, j.snap) != nil {
			continue
		}
		n++
		c.mu.Lock()
		if j.blocks > j.e.savedBlocks {
			j.e.savedBlocks = j.blocks
		}
		if j.sbs > j.e.savedSBs {
			j.e.savedSBs = j.sbs
		}
		c.mu.Unlock()
	}
	return n
}

// Len reports how many decoder lines are resident.
func (c *SnapCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Contains reports whether the decoder line is resident (for tests and
// monitoring; the answer may be stale by the time it returns).
func (c *SnapCache) Contains(hash [32]byte, mode uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[CacheKey{Hash: hash, Mode: mode}]
	return e != nil && e.elem != nil
}

// Drain drops every resident entry's idle VMs, keeping the snapshots
// (and their warm block caches) resident, and reports how many VMs were
// dropped. The between-bursts memory valve for a long-lived server.
func (c *SnapCache) Drain() int {
	c.mu.Lock()
	pools := make([]*Pool, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		pools = append(pools, el.Value.(*cacheEntry).pool)
	}
	c.mu.Unlock()
	n := 0
	for _, p := range pools {
		n += p.Drain()
	}
	return n
}
