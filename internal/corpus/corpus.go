// Package corpus generates the deterministic synthetic datasets used by
// the evaluation harness. The paper's corpora (a Linux 2.6.11 source
// tree, photos, music) are unavailable offline; these generators produce
// inputs with comparable statistical structure — compressible
// English-like text for the general-purpose codecs, smooth-plus-edges
// images for the image codecs, and tonal audio for the audio codecs —
// with every byte reproducible from a seed.
package corpus

import (
	"math"
	"math/rand"

	"vxa/internal/bmp"
	"vxa/internal/wav"
)

// Text produces n bytes of word-like, highly compressible text using a
// small Markov process over a fixed vocabulary, mimicking source code /
// prose redundancy.
func Text(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	vocab := []string{
		"the", "archive", "decoder", "virtual", "machine", "stream",
		"compress", "buffer", "format", "return", "int", "byte", "for",
		"while", "data", "codec", "durable", "extract", "header", "index",
		"block", "huffman", "symbol", "length", "offset", "window",
	}
	out := make([]byte, 0, n+16)
	prev := 0
	for len(out) < n {
		// Favour repeating recent words; real text is locally repetitive.
		var w string
		if r.Intn(4) == 0 {
			w = vocab[prev]
		} else {
			prev = r.Intn(len(vocab))
			w = vocab[prev]
		}
		out = append(out, w...)
		if r.Intn(12) == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// Image produces a w x h test image: smooth gradients, a few hard-edged
// rectangles, and light noise — the mix block and wavelet transforms are
// designed for.
func Image(w, h int, seed int64) *bmp.Image {
	r := rand.New(rand.NewSource(seed))
	im := bmp.New(w, h)
	type rect struct {
		x0, y0, x1, y1 int
		cr, cg, cb     byte
	}
	rects := make([]rect, 6)
	for i := range rects {
		x0, y0 := r.Intn(w), r.Intn(h)
		rects[i] = rect{x0, y0, x0 + r.Intn(w/2+1), y0 + r.Intn(h/2+1),
			byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cr := byte(96 + 64*math.Sin(float64(x)/23))
			cg := byte(96 + 64*math.Sin(float64(y)/31))
			cb := byte((x*255 + y*128) / (w + h))
			for _, rc := range rects {
				if x >= rc.x0 && x < rc.x1 && y >= rc.y0 && y < rc.y1 {
					cr, cg, cb = rc.cr, rc.cg, rc.cb
				}
			}
			n := byte(r.Intn(7))
			im.Set(x, y, cr+n, cg+n, cb+n)
		}
	}
	return im
}

// Audio produces tonal stereo-capable audio with vibrato and noise — the
// kind of signal linear predictors and ADPCM are built for.
func Audio(frames, channels int, seed int64) *wav.Sound {
	r := rand.New(rand.NewSource(seed))
	s := &wav.Sound{Channels: channels, SampleRate: 44100,
		Samples: make([]int16, frames*channels)}
	for ch := 0; ch < channels; ch++ {
		f0 := 180.0 + 70.0*float64(ch)
		phase := 0.0
		for i := 0; i < frames; i++ {
			f := f0 * (1 + 0.01*math.Sin(float64(i)/2000))
			phase += 2 * math.Pi * f / 44100
			v := 9000*math.Sin(phase) + 3000*math.Sin(2.1*phase) +
				float64(r.Intn(201)-100)
			if v > 32767 {
				v = 32767
			}
			if v < -32768 {
				v = -32768
			}
			s.Samples[i*channels+ch] = int16(v)
		}
	}
	return s
}

// Song returns the encoded WAV bytes of a "track" of the given duration
// in seconds, the §5.3 storage-overhead unit.
func Song(seconds int, seed int64) []byte {
	return wav.Encode(Audio(44100*seconds/10, 2, seed)) // 1/10 scale, see EXPERIMENTS.md
}
