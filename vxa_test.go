package vxa

import (
	"bytes"
	"context"
	"testing"

	"vxa/internal/bench"
)

// TestQuickstart exercises the public API end to end.
func TestQuickstart(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	content := bytes.Repeat([]byte("public api round trip "), 400)
	if err := w.AddFile("hello.txt", content, 0644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ExtractMode{NativeFirst, AlwaysVXA} {
		e := r.Entries()[0]
		got, err := r.ExtractBytes(context.Background(), &e, WithMode(mode))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("mode %v: mismatch", mode)
		}
	}
	if errs := r.Verify(context.Background()); len(errs) != 0 {
		t.Fatalf("verify: %v", errs)
	}
}

// TestTable1Inventory validates the decoder inventory against the
// paper's Table 1 structure: two general-purpose codecs, two image
// decoders emitting BMP, two audio decoders emitting WAV, plus redecs.
func TestTable1Inventory(t *testing.T) {
	rows := bench.Table1()
	count := map[string]int{}
	for _, r := range rows {
		count[r.Output]++
	}
	if count["raw data"] < 3 { // deflate, zlib, bwt, gzip
		t.Errorf("general-purpose decoders = %d, want >= 3", count["raw data"])
	}
	if count["BMP image"] != 2 {
		t.Errorf("BMP decoders = %d, want 2", count["BMP image"])
	}
	if count["WAV audio"] != 2 {
		t.Errorf("WAV decoders = %d, want 2", count["WAV audio"])
	}
	var haveRedec bool
	for _, r := range rows {
		if r.Kind == "redec" {
			haveRedec = true
		}
	}
	if !haveRedec {
		t.Error("no recognizer-decoder registered")
	}
}

// TestTable2Sizes validates the decoder code-size accounting: every
// decoder is tens of KB, splits into decoder-proper vs runtime text,
// and compresses substantially with deflate — the shape of Table 2.
func TestTable2Sizes(t *testing.T) {
	rows, err := bench.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Total < 1024 || r.Total > 512<<10 {
			t.Errorf("%s: total %d bytes outside plausible range", r.Codec, r.Total)
		}
		if r.DecoderBytes == 0 || r.RuntimeBytes == 0 {
			t.Errorf("%s: missing decoder/runtime split", r.Codec)
		}
		if r.Compressed >= r.Total {
			t.Errorf("%s: decoder did not compress (%d -> %d)", r.Codec, r.Total, r.Compressed)
		}
	}
	// The paper's jp2/vorbis decoders are its largest; ours with the most
	// logic (deflate, bwt) should exceed the simplest (adpcm).
	sizes := map[string]int{}
	for _, r := range rows {
		sizes[r.Codec] = r.DecoderBytes
	}
	if sizes["deflate"] <= sizes["adpcm"] {
		t.Errorf("deflate decoder (%d) should out-size adpcm (%d)", sizes["deflate"], sizes["adpcm"])
	}
}

// TestStorageOverhead validates the §5.3 shape: overhead falls roughly
// 10x from a 1-track to a 10-track archive, and the lossless archive's
// overhead is far smaller than the lossy one's (bigger payload).
func TestStorageOverhead(t *testing.T) {
	rows, err := bench.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bench.OverheadRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	one := byName["1 track, lossy (adpcm)"]
	ten := byName["10 tracks, lossy (adpcm)"]
	oneLL := byName["1 track, lossless (lpc)"]
	if one.OverheadPct <= ten.OverheadPct*5 {
		t.Errorf("amortization shape wrong: 1 track %.2f%%, 10 tracks %.2f%%",
			one.OverheadPct, ten.OverheadPct)
	}
	if oneLL.OverheadPct >= one.OverheadPct {
		t.Errorf("lossless archive overhead (%.2f%%) should undercut lossy (%.2f%%)",
			oneLL.OverheadPct, one.OverheadPct)
	}
	if one.OverheadPct > 60 {
		t.Errorf("1-track overhead %.2f%% implausibly large", one.OverheadPct)
	}
}

// TestFig7Shape runs the Figure 7 measurement once and validates the
// qualitative claims this reproduction preserves: every decoder works
// virtualized, and the fragment cache is a large win (the §4.2 ablation).
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 measurement is slow")
	}
	rows, err := bench.Fig7(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.VX32 <= 0 || r.Native <= 0 {
			t.Errorf("%s: bad timings %+v", r.Codec, r)
		}
		if r.Slowdown < 1 {
			t.Logf("%s: virtualized faster than native (%.2fx) — unexpected but not wrong", r.Codec, r.Slowdown)
		}
	}
}

// TestParallelPublicAPI exercises the concurrent engine end to end
// through the public surface: ExtractAll over the worker pipeline with
// pooled VMs, streamed verification, and the pool counters.
func TestParallelPublicAPI(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	var want [][]byte
	for i := 0; i < 8; i++ {
		data := bytes.Repeat([]byte{byte('a' + i), ' '}, 3000+200*i)
		name := string(rune('a'+i)) + ".txt"
		if err := w.AddFile(name, data, 0644); err != nil {
			t.Fatal(err)
		}
		want = append(want, data)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithMode(AlwaysVXA), WithReuseVM(true), WithParallel(4)}
	results := r.ExtractAll(context.Background(), opts...)
	if len(results) != len(want) {
		t.Fatalf("results = %d, want %d", len(results), len(want))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Entry.Name, res.Err)
		}
		if !bytes.Equal(res.Data, want[i]) {
			t.Fatalf("%s: content mismatch", res.Entry.Name)
		}
	}
	if errs := r.Verify(context.Background(), opts...); len(errs) != 0 {
		t.Fatalf("parallel verify: %v", errs)
	}
	st := r.PoolStats()
	if st.Snapshots != 1 {
		t.Fatalf("pool stats %+v: want exactly one decoder snapshot", st)
	}
	if st.Resumes == 0 {
		t.Fatalf("pool stats %+v: expected parked-VM resumes across 16 streams", st)
	}
}
